//! Integration tests of the query service: concurrent differential
//! correctness against the sequential oracle, admission control,
//! budgets, cancellation, cache behavior and the metrics export.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{RpqQuery, Term};
use rpq_server::{IndexSource, QueryBudget, QueryStatus, RpqError, RpqServer, ServerConfig};
use workload::{GraphGen, GraphGenConfig, QueryGen};

fn workload_graph(seed: u64) -> Graph {
    GraphGen::new(GraphGenConfig {
        n_nodes: 36,
        n_preds: 4,
        n_edges: 170,
        pred_zipf: 1.2,
        node_skew: 0.8,
        seed,
    })
    .generate()
}

fn table1_queries(graph: &Graph, seeds: &[u64]) -> Vec<RpqQuery> {
    seeds
        .iter()
        .flat_map(|&seed| {
            QueryGen::new(graph, seed)
                .scaled_log(0.0)
                .into_iter()
                .map(|gq| gq.query)
        })
        .collect()
}

/// The acceptance-criteria stress test: 8 client threads hammer a
/// server with 8 workers using the full Table 1 query-shape mix, and
/// every single answer must equal the sequential oracle's.
#[test]
fn concurrent_stress_matches_sequential_oracle() {
    const CLIENTS: usize = 8;
    let graph = workload_graph(0xBEEF);
    let queries = table1_queries(&graph, &[11, 12, 13]);
    assert_eq!(queries.len(), 60, "Table 1 has 20 patterns × 3 seeds");
    let expected: Vec<Vec<(u64, u64)>> =
        queries.iter().map(|q| evaluate_naive(&graph, q)).collect();

    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 8,
            max_pending: 4096,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (server, queries, expected) = (&server, &queries, &expected);
            scope.spawn(move || {
                for i in 0..queries.len() {
                    let i = (i + c * 11) % queries.len();
                    let ticket = server
                        .submit_parsed(queries[i].clone(), QueryBudget::default())
                        .unwrap_or_else(|e| panic!("client {c}, query #{i}: submit: {e}"));
                    let answer = server
                        .wait(&ticket)
                        .unwrap_or_else(|e| panic!("client {c}, query #{i}: {e}"));
                    assert!(answer.is_complete(), "client {c}, query #{i} was partial");
                    assert_eq!(
                        answer.pairs, expected[i],
                        "client {c} disagrees with the sequential oracle on query #{i}"
                    );
                }
            });
        }
    });

    let m = server.metrics();
    assert_eq!(
        m.completed.load(Ordering::Relaxed) as usize,
        CLIENTS * queries.len()
    );
    assert_eq!(m.failed.load(Ordering::Relaxed), 0);
    // 8 clients submit the same 60 patterns/keys: both caches must have
    // absorbed most of the repetition.
    let json = server.metrics_json();
    assert!(json.contains("\"plan_cache\""), "{json}");
    server.shutdown();
}

/// Repeated submissions of one key are served from the result cache
/// (identical answers, hits counted), and the invalidation hook drops
/// everything without breaking later queries.
#[test]
fn result_and_plan_caches_hit_and_invalidate() {
    let graph = workload_graph(0xCAFE);
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let a1 = server.query_blocking("0", "0+/1?", "?y").unwrap();
    let a2 = server.query_blocking("0", "0+/1?", "?y").unwrap();
    assert_eq!(a1.pairs, a2.pairs);
    // Same pattern, different anchor: plan cache hit, result cache miss.
    let _ = server.query_blocking("1", "0+/1?", "?y").unwrap();

    let json = server.metrics_json();
    assert!(json.contains("\"result_cache\":{\"hits\":1"), "{json}");
    // Plan compiled once for three queries.
    assert!(json.contains("\"plan_cache\":{\"hits\":1"), "{json}");

    server.invalidate_caches();
    let a3 = server.query_blocking("0", "0+/1?", "?y").unwrap();
    assert_eq!(a1.pairs, a3.pairs);
    let json = server.metrics_json();
    assert!(json.contains("\"invalidations\":1"), "{json}");
    server.shutdown();
}

/// A result-cache hit still honours the *requesting* job's
/// `max_results`: a big cached answer comes back as a truncated prefix,
/// not the full payload.
#[test]
fn cache_hits_respect_the_requesters_result_limit() {
    let graph = Graph::from_triples((0..20).map(|i| Triple::new(0, 0, i + 1)).collect());
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let q = || RpqQuery::new(Term::Const(0), automata::Regex::label(0), Term::Var);
    // Populate the cache with the full 20-pair answer.
    let t = server.submit_parsed(q(), QueryBudget::default()).unwrap();
    let full = server.wait(&t).unwrap();
    assert_eq!(full.pairs.len(), 20);
    assert!(full.is_complete());
    // Same key, tiny limit: served from cache, truncated to the limit.
    let t = server
        .submit_parsed(
            q(),
            QueryBudget {
                max_results: 3,
                ..QueryBudget::default()
            },
        )
        .unwrap();
    let small = server.wait(&t).unwrap();
    assert_eq!(small.pairs.len(), 3);
    assert!(small.truncated);
    assert_eq!(small.pairs[..], full.pairs[..3]);
    let json = server.metrics_json();
    assert!(json.contains("\"result_cache\":{\"hits\":1"), "{json}");
    server.shutdown();
}

/// Admission control: a full queue rejects synchronously with
/// `Overloaded`, queued jobs can be cancelled, and the metrics gauges
/// track depth and rejections. (`admission_only` keeps jobs queued
/// forever, making the test deterministic.)
#[test]
fn admission_control_and_cancellation() {
    let graph = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)]);
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 0,
            admission_only: true,
            max_pending: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let tickets: Vec<_> = (0..4)
        .map(|_| server.submit("0", "0+", "?y").expect("queue has room"))
        .collect();
    assert_eq!(server.queue_depth(), 4);
    match server.submit("0", "0+", "?y") {
        Err(RpqError::Overloaded { pending, capacity }) => {
            assert_eq!((pending, capacity), (4, 4));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(matches!(
        server.poll(&tickets[0]),
        Some(QueryStatus::Queued)
    ));

    // Cancel a queued job: immediate, observable, idempotent.
    assert!(server.cancel(&tickets[1]));
    assert!(matches!(
        server.poll(&tickets[1]),
        Some(QueryStatus::Cancelled)
    ));
    assert!(!server.cancel(&tickets[1]), "already terminal");
    assert_eq!(server.wait(&tickets[1]).unwrap_err(), RpqError::Cancelled);

    // Unknown tickets are typed errors, not panics.
    assert!(server.poll(&tickets[1]).is_none(), "wait() forgets the job");
    assert_eq!(
        server.wait(&tickets[1]).unwrap_err(),
        RpqError::UnknownTicket
    );

    let m = server.metrics();
    assert_eq!(m.rejected_overload.load(Ordering::Relaxed), 1);
    assert_eq!(m.cancelled.load(Ordering::Relaxed), 1);
    assert_eq!(m.queue_peak.load(Ordering::Relaxed), 4);
    server.shutdown();
}

/// Node budgets abort evaluation with a hard, typed `BudgetExceeded` on
/// both the general engine route and the fast paths.
#[test]
fn node_budget_exceeded_is_a_hard_error() {
    let graph = Graph::from_triples((0..50).map(|i| Triple::new(i, 0, i + 1)).collect());
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let tiny = QueryBudget {
        node_budget: Some(2),
        ..QueryBudget::default()
    };

    // General route: a transitive closure visits far more than 2 nodes.
    let q = RpqQuery::new(
        Term::Var,
        automata::Regex::Plus(Box::new(automata::Regex::label(0))),
        Term::Var,
    );
    let ticket = server.submit_parsed(q, tiny).unwrap();
    match server.wait(&ticket) {
        Err(RpqError::BudgetExceeded { budget: 2, .. }) => {}
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // Fast-path route: a single-label v-to-v scan trips the same cap.
    let q = RpqQuery::new(Term::Var, automata::Regex::label(0), Term::Var);
    let ticket = server.submit_parsed(q, tiny).unwrap();
    assert!(matches!(
        server.wait(&ticket),
        Err(RpqError::BudgetExceeded { .. })
    ));

    // A generous budget on the same queries succeeds.
    let q = RpqQuery::new(Term::Var, automata::Regex::label(0), Term::Var);
    let ticket = server
        .submit_parsed(
            q,
            QueryBudget {
                node_budget: Some(1_000_000),
                ..QueryBudget::default()
            },
        )
        .unwrap();
    assert_eq!(server.wait(&ticket).unwrap().pairs.len(), 50);

    assert_eq!(server.metrics().budget_exceeded.load(Ordering::Relaxed), 2);
    server.shutdown();
}

/// Parse and resolution errors are synchronous at submit; one bad entry
/// does not poison a batch.
#[test]
fn submit_batch_isolates_bad_entries() {
    let graph = Graph::from_triples(vec![Triple::new(0, 0, 1)]);
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let results = server.submit_batch(&[
        ("0", "0", "?y"),
        ("0", "0/(", "?y"), // parse error
        ("zzz", "0", "?y"), // unknown node
        ("?x", "0", "1"),
    ]);
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(RpqError::Parse(_))));
    assert!(matches!(results[2], Err(RpqError::UnknownNode(_))));
    let good = results[3].as_ref().unwrap();
    assert_eq!(server.wait(good).unwrap().pairs, vec![(0, 1)]);
    server.shutdown();
}

/// The metrics export is one structurally valid JSON object.
#[test]
fn metrics_json_is_balanced_and_complete() {
    let graph = workload_graph(0xD00D);
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 2,
            default_budget: QueryBudget {
                timeout: Some(Duration::from_secs(5)),
                ..QueryBudget::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    for (s, e, o) in [("0", "0", "?y"), ("?x", "(0|1)+", "3"), ("0", "0/1", "?y")] {
        let _ = server.query_blocking(s, e, o);
    }
    let json = server.metrics_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    let (mut braces, mut brackets, mut in_string) = (0i64, 0i64, false);
    for c in json.chars() {
        match c {
            '"' => in_string = !in_string,
            '{' if !in_string => braces += 1,
            '}' if !in_string => braces -= 1,
            '[' if !in_string => brackets += 1,
            ']' if !in_string => brackets -= 1,
            _ => {}
        }
        assert!(braces >= 0 && brackets >= 0, "unbalanced: {json}");
    }
    assert_eq!((braces, brackets, in_string), (0, 0, false), "{json}");
    for key in [
        "\"uptime_ms\"",
        "\"workers\":2",
        "\"queries\"",
        "\"queue\"",
        "\"plan_cache\"",
        "\"result_cache\"",
        "\"latency_us\"",
        "\"p99_us\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    server.shutdown();
}

/// Shutting down fails whatever was still queued and refuses new work;
/// the call is idempotent.
#[test]
fn shutdown_drains_and_rejects() {
    let graph = Graph::from_triples(vec![Triple::new(0, 0, 1)]);
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 0,
            admission_only: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let ticket = server.submit("0", "0", "?y").unwrap();
    server.shutdown();
    assert!(matches!(
        server.poll(&ticket),
        Some(QueryStatus::Failed(RpqError::ShuttingDown))
    ));
    assert_eq!(
        server.wait(&ticket).unwrap_err(),
        RpqError::ShuttingDown,
        "queued work is failed, not lost"
    );
    assert!(matches!(
        server.submit("0", "0", "?y"),
        Err(RpqError::ShuttingDown)
    ));
    server.shutdown();
}

/// The zero-worker footgun: a serving config with `workers: 0` used to
/// accept submissions that could never run (every `wait` hung forever).
/// It is now rejected at construction with a typed error, and the
/// explicit `admission_only` replacement fails `wait` fast instead of
/// blocking.
#[test]
fn zero_worker_config_is_rejected_and_admission_only_wait_fails_fast() {
    let graph = Graph::from_triples(vec![Triple::new(0, 0, 1)]);
    let ring = Ring::build(&graph, RingOptions::default());
    let source = Arc::new(IndexSource::id_only(ring));

    match RpqServer::start(
        Arc::clone(&source) as Arc<dyn rpq_server::QuerySource>,
        ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        },
    ) {
        Err(RpqError::InvalidConfig(msg)) => {
            assert!(msg.contains("workers"), "unhelpful message: {msg}");
        }
        Ok(_) => panic!("workers: 0 without admission_only must be rejected"),
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
    }

    // The sanctioned queue-only mode: submissions queue, `poll` works,
    // and `wait` on a queued job is a typed error, not a hang.
    let server = RpqServer::start(
        source,
        ServerConfig {
            workers: 0,
            admission_only: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let ticket = server.submit("0", "0", "?y").unwrap();
    assert!(matches!(server.poll(&ticket), Some(QueryStatus::Queued)));
    assert!(matches!(
        server.wait(&ticket),
        Err(RpqError::InvalidConfig(_))
    ));
    // The job is untouched: still queued, still pollable, cancellable.
    assert!(matches!(server.poll(&ticket), Some(QueryStatus::Queued)));
    assert!(server.cancel(&ticket));
    server.shutdown();
}

/// Graceful drain: admissions stop immediately, the backlog finishes,
/// and the report (plus both metrics exporters) accounts for every job;
/// when nothing can run, the deadline aborts what was queued.
#[test]
fn drain_finishes_backlog_then_deadline_aborts_stragglers() {
    // A serving configuration: every submitted query completes within
    // the deadline, nothing is aborted.
    let graph = workload_graph(11);
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let tickets: Vec<_> = (0..8)
        .map(|_| server.submit("?x", "0", "?y").unwrap())
        .collect();
    let report = server.drain(Duration::from_secs(30));
    assert_eq!(report.aborted, 0, "a live pool must finish its backlog");
    assert!(
        report.checkpoint_epoch.is_none() && report.checkpoint_error.is_none(),
        "an immutable source has nothing durable to checkpoint"
    );
    for t in &tickets {
        assert!(
            matches!(server.poll(t), Some(QueryStatus::Done(_))),
            "drained jobs must have completed"
        );
    }
    assert!(
        matches!(server.submit("?x", "0", "?y"), Err(RpqError::ShuttingDown)),
        "a drained server rejects new work with the typed error"
    );
    assert!(server.metrics_json().contains("\"drains\":1"));
    assert!(server.prometheus_metrics().contains("rpq_drains_total 1"));

    // Admission-only: nothing ever runs, so the deadline expires and the
    // queued job is aborted (failed with ShuttingDown), not stranded.
    let graph = Graph::from_triples(vec![Triple::new(0, 0, 1)]);
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 0,
            admission_only: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let ticket = server.submit("0", "0", "?y").unwrap();
    let report = server.drain(Duration::from_millis(50));
    assert_eq!(report.drained, 0);
    assert_eq!(report.aborted, 1);
    assert!(matches!(
        server.poll(&ticket),
        Some(QueryStatus::Failed(RpqError::ShuttingDown))
    ));
}

/// Submissions racing a drain must never strand a job: each submit
/// either gets a synchronous rejection (`ShuttingDown`/`Overloaded`) or
/// its ticket resolves to a terminal state once `drain` returns — no
/// ticket may still read `Queued` or `Running`. (The worker used to
/// count a popped job into `in_flight` only after releasing the queue
/// lock, so a drain could observe the job in neither the queue nor the
/// in-flight count and declare the backlog drained while it still ran.)
#[test]
fn drain_racing_submissions_strands_no_job() {
    const SUBMITTERS: usize = 4;
    for round in 0..12 {
        let graph = workload_graph(round);
        let ring = Ring::build(&graph, RingOptions::default());
        let server = RpqServer::start(
            Arc::new(IndexSource::id_only(ring)),
            ServerConfig {
                workers: 2,
                max_pending: 64,
                // No result cache: every job takes the evaluation path,
                // keeping workers busy while the drain flag flips.
                result_cache_bytes: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let mut accepted: Vec<Vec<rpq_server::QueryTicket>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SUBMITTERS)
                .map(|_| {
                    let server = &server;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            match server.submit("?x", "0+", "?y") {
                                Ok(t) => mine.push(t),
                                Err(RpqError::ShuttingDown) => break,
                                Err(RpqError::Overloaded { .. }) => {
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        }
                        mine
                    })
                })
                .collect();
            // Let the submitters build a backlog, then drain under them.
            std::thread::sleep(Duration::from_millis(2));
            let report = server.drain(Duration::from_secs(30));
            assert_eq!(
                report.aborted, 0,
                "a live pool given 30s must finish, not abort, its backlog"
            );
            accepted = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });

        for t in accepted.iter().flatten() {
            match server.poll(t) {
                Some(QueryStatus::Done(_)) => {}
                other => {
                    panic!("round {round}: accepted job left in {other:?} after a successful drain")
                }
            }
        }
    }
}
