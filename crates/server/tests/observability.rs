//! Integration tests of the observability surface: per-answer profiles,
//! the slow-query log under concurrent load, and the Prometheus export.

use std::sync::Arc;
use std::time::Duration;

use ring::ring::RingOptions;
use ring::{Graph, Ring};
use rpq_core::oracle::evaluate_naive;
use rpq_core::RpqQuery;
use rpq_server::{IndexSource, QueryBudget, RpqServer, ServerConfig};
use workload::{GraphGen, GraphGenConfig, QueryGen};

fn workload_graph(seed: u64) -> Graph {
    GraphGen::new(GraphGenConfig {
        n_nodes: 36,
        n_preds: 4,
        n_edges: 170,
        pred_zipf: 1.2,
        node_skew: 0.8,
        seed,
    })
    .generate()
}

fn start(graph: &Graph, config: ServerConfig) -> RpqServer {
    let ring = Ring::build(graph, RingOptions::default());
    RpqServer::start(Arc::new(IndexSource::id_only(ring)), config).unwrap()
}

/// With profiling off (the default), answers carry no profile — the
/// zero-overhead contract starts with not allocating one.
#[test]
fn profiles_are_absent_by_default() {
    let graph = workload_graph(0xF00D);
    let server = start(&graph, ServerConfig::default());
    let answer = server.query_blocking("?x", "0+", "?y").unwrap();
    assert!(answer.profile.is_none());
    assert!(server.slow_log().is_empty());
    server.shutdown();
}

/// With `config.profile` on, every answer carries a profile whose
/// server-side phases are filled in: queue wait and compile time on an
/// evaluated answer, a `cache_hit` marker on a result-cache hit — and
/// the answers themselves are identical to an unprofiled server's.
#[test]
fn profiles_attach_and_answers_are_unchanged() {
    let graph = workload_graph(0xF00D);
    let plain = start(&graph, ServerConfig::default());
    let profiled = start(
        &graph,
        ServerConfig {
            profile: true,
            ..ServerConfig::default()
        },
    );

    for (s, expr, o) in [("?x", "0+", "?y"), ("0", "0/1?", "?y"), ("?x", "2", "3")] {
        let a = plain.query_blocking(s, expr, o).unwrap();
        let b = profiled.query_blocking(s, expr, o).unwrap();
        assert_eq!(a.pairs, b.pairs, "profiling changed the answer to {expr}");
        assert!(a.profile.is_none());
        let p = b
            .profile
            .as_ref()
            .expect("profiled server must attach a profile");
        assert_eq!(p.cache_hit, Some(false));
        assert!(p.queue_wait_us.is_some(), "queue wait must be measured");
        assert!(p.compile_us.is_some(), "compile time must be measured");
    }

    // A repeat of the first key is a result-cache hit: still profiled,
    // marked as a hit, with no execution phases to report.
    let hit = profiled.query_blocking("?x", "0+", "?y").unwrap();
    let p = hit.profile.as_ref().expect("cache hits are profiled too");
    assert_eq!(p.cache_hit, Some(true));
    assert!(p.queue_wait_us.is_some());
    assert_eq!(p.exec_us, 0);

    plain.shutdown();
    profiled.shutdown();
}

/// Cached answers must never leak a stale profile: the profile describes
/// *this* request's timings, so the one attached to a hit is freshly
/// built, not the insert-time one.
#[test]
fn cached_answers_get_fresh_profiles() {
    let graph = workload_graph(0xF00D);
    let server = start(
        &graph,
        ServerConfig {
            profile: true,
            ..ServerConfig::default()
        },
    );
    let first = server.query_blocking("?x", "0+", "?y").unwrap();
    let second = server.query_blocking("?x", "0+", "?y").unwrap();
    assert_eq!(first.pairs, second.pairs);
    assert_eq!(first.profile.as_ref().unwrap().cache_hit, Some(false));
    assert_eq!(second.profile.as_ref().unwrap().cache_hit, Some(true));
    server.shutdown();
}

/// The slow log under the 8-client stress mix: a zero threshold admits
/// everything, so the log must end up exactly full, sorted worst-first,
/// with every entry carrying a full profile (slow logging implies
/// profiling even when `config.profile` is off).
#[test]
fn slow_log_keeps_the_worst_n_under_concurrency() {
    const CLIENTS: usize = 8;
    const CAPACITY: usize = 5;
    let graph = workload_graph(0xBEEF);
    let queries: Vec<RpqQuery> = QueryGen::new(&graph, 17)
        .scaled_log(0.0)
        .into_iter()
        .map(|gq| gq.query)
        .collect();
    let server = start(
        &graph,
        ServerConfig {
            workers: 4,
            slow_log_capacity: CAPACITY,
            slow_log_threshold: Duration::ZERO,
            ..ServerConfig::default()
        },
    );

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (server, queries, graph) = (&server, &queries, &graph);
            scope.spawn(move || {
                for i in 0..queries.len() {
                    let i = (i + c * 7) % queries.len();
                    let ticket = server
                        .submit_parsed(queries[i].clone(), QueryBudget::default())
                        .unwrap();
                    let answer = server.wait(&ticket).unwrap();
                    assert_eq!(answer.pairs, evaluate_naive(graph, &queries[i]));
                    // Slow logging alone must not leak profiles onto
                    // client-visible answers.
                    assert!(answer.profile.is_none());
                }
            });
        }
    });

    let entries = server.slow_log().entries();
    assert_eq!(entries.len(), CAPACITY, "zero threshold fills the log");
    for pair in entries.windows(2) {
        assert!(
            pair[0].total_us >= pair[1].total_us,
            "entries must be sorted worst-first"
        );
    }
    for e in &entries {
        assert!(
            e.cache_hit || e.profile.is_some(),
            "evaluated slow entries carry their profile"
        );
    }
    let json = server.slow_queries_json();
    assert!(
        json.starts_with("{\"threshold_us\":0,\"capacity\":5,"),
        "{json}"
    );
    server.shutdown();
}

/// An unreachable threshold keeps the log empty no matter the load.
#[test]
fn slow_log_threshold_filters_everything_below_it() {
    let graph = workload_graph(0xBEEF);
    let server = start(
        &graph,
        ServerConfig {
            slow_log_capacity: 4,
            slow_log_threshold: Duration::from_secs(3600),
            ..ServerConfig::default()
        },
    );
    for _ in 0..10 {
        server.query_blocking("?x", "0+", "?y").unwrap();
    }
    assert!(server.slow_log().is_empty());
    assert!(server.slow_queries_json().ends_with("\"entries\":[]}"));
    server.shutdown();
}

/// The Prometheus rendering through the public server handle: the core
/// metric families are present and the text ends with a newline (the
/// exposition-format requirement scrapers check first).
#[test]
fn prometheus_export_covers_the_registry() {
    let graph = workload_graph(0xCAFE);
    let server = start(&graph, ServerConfig::default());
    server.query_blocking("?x", "0+", "?y").unwrap();
    server.query_blocking("?x", "0+", "?y").unwrap();

    let text = server.prometheus_metrics();
    assert!(text.ends_with('\n'));
    for family in [
        "rpq_queries_completed_total",
        "rpq_query_latency_seconds_bucket",
        "rpq_queue_wait_seconds_count",
        "rpq_query_exec_seconds_count",
        "rpq_planner_decisions_total",
        "rpq_cache_hits_total{cache=\"result\"}",
        "rpq_helper_pool_capacity",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    // One completed evaluation + one cache hit.
    assert!(text.contains("rpq_queries_completed_total 2"), "{text}");
    assert!(
        text.contains("rpq_cache_hits_total{cache=\"result\"} 1"),
        "{text}"
    );
    server.shutdown();
}
