//! Snapshot consistency under concurrent commits: 8 client threads
//! query while a writer commits pointer-flip batches. Every batch moves
//! M "pointer" edges at once, so the full var-var answer set of the
//! pointer predicate uniquely identifies one committed version — any
//! torn read (a mix of two versions) matches no version and fails.
//!
//! Also pinned: per-client version monotonicity (snapshot epochs are
//! captured at submit time and only move forward), result-cache hits
//! never crossing an epoch bump (keys are epoch-stamped and the caches
//! drop on observed bumps), and the metrics JSON reporting the commit /
//! compaction counters and the live epoch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ring::store::TripleStore;
use ring::{Graph, Id, Triple};
use rpq_server::{LiveSource, RpqServer, ServerConfig};

/// Pointer count (edges flipped per batch).
const M: u64 = 4;
/// Committed versions after the base (version 0).
const VERSIONS: u64 = 12;

/// The target node of pointer `i` at version `v`.
fn target(v: u64, i: u64) -> Id {
    M + v * M + i
}

/// The full expected answer set of `(?x, p0, ?y)` at version `v`.
fn answer_at(v: u64) -> Vec<(Id, Id)> {
    let mut a: Vec<(Id, Id)> = (0..M).map(|i| (i, target(v, i))).collect();
    a.sort_unstable();
    a
}

#[test]
fn concurrent_commits_never_tear_answers() {
    let base = Graph::from_triples((0..M).map(|i| Triple::new(i, 0, target(0, i))).collect());
    let store = TripleStore::new(base).with_auto_compact_ratio(None);
    let source = Arc::new(LiveSource::new(store));
    let server = Arc::new(
        RpqServer::start(
            Arc::clone(&source) as Arc<dyn rpq_server::QuerySource>,
            ServerConfig {
                workers: 8,
                ..ServerConfig::default()
            },
        )
        .unwrap(),
    );
    let expected: Arc<Vec<Vec<(Id, Id)>>> = Arc::new((0..=VERSIONS).map(answer_at).collect());

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..8)
        .map(|r| {
            let server = Arc::clone(&server);
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_version = 0usize;
                let mut checked = 0usize;
                while !done.load(Ordering::Acquire) || checked == 0 {
                    let answer = server
                        .query_blocking("?x", "0", "?y")
                        .unwrap_or_else(|e| panic!("reader {r}: {e}"));
                    let version = expected
                        .iter()
                        .position(|a| a == &answer.pairs)
                        .unwrap_or_else(|| {
                            panic!(
                                "reader {r}: torn read — answer {:?} matches no \
                                 committed version",
                                answer.pairs
                            )
                        });
                    assert!(
                        version >= last_version,
                        "reader {r}: version went backwards ({last_version} -> {version})"
                    );
                    last_version = version;
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    // The writer: flip all M pointers per batch, commit atomically,
    // compact once mid-run (answers must not change across it).
    for v in 1..=VERSIONS {
        for i in 0..M {
            source.store().delete(Triple::new(i, 0, target(v - 1, i)));
            source.store().insert(Triple::new(i, 0, target(v, i)));
        }
        source.store().commit();
        if v == VERSIONS / 2 {
            source.store().compact();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done.store(true, Ordering::Release);
    let total: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total >= 8, "readers barely ran ({total} checks)");

    // Settled state: the final version, twice — the second answer is a
    // result-cache hit *within* the final epoch.
    let first = server.query_blocking("?x", "0", "?y").unwrap();
    assert_eq!(first.pairs, expected[VERSIONS as usize]);
    let hits_before = server.metrics().latency_cached.count();
    let second = server.query_blocking("?x", "0", "?y").unwrap();
    assert_eq!(second.pairs, expected[VERSIONS as usize]);
    assert!(
        server.metrics().latency_cached.count() > hits_before,
        "expected a same-epoch result-cache hit"
    );

    // A post-hit commit bumps the epoch; the stale cached answer must
    // not survive it.
    source
        .store()
        .insert(Triple::new(0, 0, target(VERSIONS, 1)));
    source.store().commit();
    let after = server.query_blocking("?x", "0", "?y").unwrap();
    assert_ne!(after.pairs, expected[VERSIONS as usize]);
    assert!(after.pairs.contains(&(0, target(VERSIONS, 1))));

    // Metrics report the update counters.
    let metrics = server.metrics_json();
    let expect_commits = format!("\"commits\":{}", VERSIONS + 1);
    assert!(metrics.contains(&expect_commits), "{metrics}");
    assert!(metrics.contains("\"compactions\":1"), "{metrics}");
    let expect_epoch = format!("\"epoch\":{}", source.store().epoch());
    assert!(metrics.contains(&expect_epoch), "{metrics}");
    assert!(!metrics.contains("\"epoch_bumps_observed\":0"), "{metrics}");
    server.shutdown();
}

/// Delta-introduced nodes (ids beyond the ring's universe) resolve and
/// answer through the server as soon as their commit publishes — in both
/// traversal directions — and tombstoned edges disappear.
#[test]
fn delta_nodes_resolve_and_tombstones_mask() {
    let base = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)]);
    let store = TripleStore::new(base).with_auto_compact_ratio(None);
    let source = Arc::new(LiveSource::new(store));
    let server = RpqServer::start(
        Arc::clone(&source) as Arc<dyn rpq_server::QuerySource>,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Node 9 does not exist yet: constant resolution fails cleanly.
    assert!(matches!(
        server.query_blocking("9", "0", "?y"),
        Err(rpq_server::RpqError::UnknownNode(_))
    ));
    source.store().insert(Triple::new(2, 0, 9));
    source.store().delete(Triple::new(0, 0, 1));
    source.store().commit();
    // Closure through the delta edge, starting from a ring node.
    let answer = server.query_blocking("1", "0+", "?y").unwrap();
    assert_eq!(answer.pairs, vec![(1, 2), (1, 9)]);
    // The delta node anchors a query and traverses an inverse step.
    let answer = server.query_blocking("9", "^0", "?y").unwrap();
    assert_eq!(answer.pairs, vec![(9, 2)]);
    // The tombstoned base edge is gone on every route.
    let answer = server.query_blocking("0", "0", "?y").unwrap();
    assert!(answer.pairs.is_empty());
    server.shutdown();
}
