//! The server executes exactly what the shared planner decides: the
//! split route is reachable through the full submit→worker→answer path,
//! answers stay differentially correct, metrics gain the `split`
//! histogram and per-route planner decision counts, and the explained
//! plan equals the route the server actually ran.

use std::sync::Arc;

use automata::Regex;
use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, EvalRoute, RpqQuery, Term};
use rpq_server::{IndexSource, QueryBudget, RpqServer, ServerConfig};

fn star(l: u64) -> Regex {
    Regex::Star(Box::new(Regex::label(l)))
}

/// One rare b-edge between dense a- and c-closures: the planner must
/// choose the split route for `a*/b/c*` without any forcing.
fn rare_label_graph() -> Graph {
    let mut triples = vec![Triple::new(6, 1, 9)];
    for i in 0..14 {
        triples.push(Triple::new(i, 0, (i + 1) % 16));
        triples.push(Triple::new((i + 2) % 16, 2, (i + 5) % 16));
    }
    Graph::from_triples(triples)
}

#[test]
fn split_route_flows_through_the_server_path() {
    let graph = rare_label_graph();
    let ring = Ring::build(&graph, RingOptions::default());
    let split_query = RpqQuery::new(
        Term::Var,
        Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2)),
        Term::Var,
    );
    let expected = evaluate_naive(&graph, &split_query);
    assert!(!expected.is_empty());

    // The explained plan for what we are about to submit.
    let explained = rpq_core::explain::explain(&ring, &split_query).unwrap();
    assert_eq!(explained.plan.route, EvalRoute::Split);

    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 2,
            result_cache_bytes: 1 << 20,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // A mixed workload so several routes land in the metrics: the split
    // query, a fastpath single label, and a bitparallel closure.
    let fast_query = RpqQuery::new(Term::Var, Regex::label(0), Term::Var);
    let bp_query = RpqQuery::new(Term::Const(0), star(0), Term::Var);
    for q in [&split_query, &fast_query, &bp_query] {
        let ticket = server
            .submit_parsed(q.clone(), QueryBudget::default())
            .unwrap();
        let answer = server.wait(&ticket).unwrap();
        let mut expect = evaluate_naive(&graph, q);
        expect.sort_unstable();
        assert_eq!(answer.pairs, expect, "server answer diverged on {q:?}");
    }

    // The split query's answer records the split route — the explained
    // route equals the executed one through the server path.
    let ticket = server
        .submit_parsed(split_query.clone(), QueryBudget::default())
        .unwrap();
    let answer = server.wait(&ticket).unwrap();
    assert_eq!(answer.route, Some(EvalRoute::Split));
    assert_eq!(answer.route, Some(explained.plan.route));

    // Metrics: the split histogram exists, and planner decisions count
    // one per evaluated route (the repeat was a result-cache hit, which
    // never reaches the planner).
    let json = server.metrics_json();
    assert!(json.contains("\"split\":{\"count\":1"), "{json}");
    assert!(json.contains("\"fastpath\":{\"count\":1"), "{json}");
    let decisions = json
        .split("\"decisions\":{")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .unwrap_or_default();
    assert!(decisions.contains("\"split\":1"), "{json}");
    assert!(decisions.contains("\"fastpath\":1"), "{json}");
    assert!(decisions.contains("\"bitparallel\":1"), "{json}");
    assert!(decisions.contains("\"fallback\":0"), "{json}");

    // The plan cache serves the split pattern like any other: the
    // repeated submission above hit the compiled plan.
    assert!(
        server
            .metrics()
            .completed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 4
    );
    server.shutdown();
}

/// A fallback-sized expression with a rare mandatory factor must also
/// take the split route server-side (the planner prefers completing two
/// anchored sides over a per-source whole-graph fallback scan).
#[test]
fn oversized_split_queries_avoid_the_fallback_scan() {
    let graph = rare_label_graph();
    let ring = Ring::build(&graph, RingOptions::default());
    // (a?){70}/b/c*: beyond the 63-position bit-parallel regime.
    let mut prefix = Regex::Opt(Box::new(Regex::label(0)));
    for _ in 1..70 {
        prefix = Regex::concat(prefix, Regex::Opt(Box::new(Regex::label(0))));
    }
    let expr = Regex::concat(Regex::concat(prefix, Regex::label(1)), star(2));
    let query = RpqQuery::new(Term::Var, expr, Term::Var);
    let expected = evaluate_naive(&graph, &query);

    let explained = rpq_core::explain::explain(&ring, &query).unwrap();
    assert_eq!(explained.plan.route, EvalRoute::Split);

    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let ticket = server.submit_parsed(query, QueryBudget::default()).unwrap();
    let answer = server.wait(&ticket).unwrap();
    assert_eq!(answer.route, Some(EvalRoute::Split));
    let mut expect = expected;
    expect.sort_unstable();
    assert_eq!(answer.pairs, expect);
    server.shutdown();
}

/// Forced routes travel through `EngineOptions`, not the server API —
/// but a worker evaluating under a node budget on the split route must
/// surface `BudgetExceeded` like any other route.
#[test]
fn split_route_respects_server_budgets() {
    let graph = rare_label_graph();
    let ring = Ring::build(&graph, RingOptions::default());
    let server = RpqServer::start(
        Arc::new(IndexSource::id_only(ring)),
        ServerConfig {
            workers: 1,
            result_cache_bytes: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let query = RpqQuery::new(
        Term::Var,
        Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2)),
        Term::Var,
    );
    let ticket = server
        .submit_parsed(
            query,
            QueryBudget {
                node_budget: Some(2),
                ..QueryBudget::default()
            },
        )
        .unwrap();
    assert!(matches!(
        server.wait(&ticket),
        Err(rpq_server::RpqError::BudgetExceeded { .. })
    ));
    let json = server.metrics_json();
    assert!(json.contains("\"budget_exceeded\":1"), "{json}");
    server.shutdown();
}

/// Sanity: the engine options a worker builds leave route forcing off,
/// so server planning is always natural.
#[test]
fn default_engine_options_do_not_force_routes() {
    assert!(EngineOptions::default().forced_route.is_none());
}
