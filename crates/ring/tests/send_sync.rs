//! `Send + Sync` audit: the ring is explicitly a read-optimized, shared,
//! immutable index — one copy serves every worker thread of a query
//! server concurrently. These assertions pin that property (no interior
//! mutability may ever creep in).

use ring::{Boundaries, Dict, Graph, Ring, Triple};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_structures_are_send_sync() {
    assert_send_sync::<Ring>();
    assert_send_sync::<Graph>();
    assert_send_sync::<Dict>();
    assert_send_sync::<Boundaries>();
    assert_send_sync::<Triple>();
}

/// Not just the bound: a `Ring` behind an `Arc` must answer identically
/// from many threads at once.
#[test]
fn ring_reads_agree_across_threads() {
    use ring::ring::RingOptions;
    let triples: Vec<Triple> = (0..120u64)
        .map(|i| Triple::new(i % 20, i % 4, (i * 3 + 1) % 20))
        .collect();
    let ring = std::sync::Arc::new(Ring::build(
        &Graph::from_triples(triples),
        RingOptions::default(),
    ));
    let baseline: Vec<(usize, usize)> = (0..ring.n_nodes()).map(|v| ring.object_range(v)).collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (ring, baseline) = (std::sync::Arc::clone(&ring), &baseline);
            scope.spawn(move || {
                for v in 0..ring.n_nodes() {
                    assert_eq!(ring.object_range(v), baseline[v as usize]);
                    let (b, e) = ring.pred_range(v % ring.n_preds());
                    assert!(b <= e);
                }
            });
        }
    });
}
