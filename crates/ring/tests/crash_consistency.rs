//! Crash-consistency battery: every save path is killed at every
//! injection point (`ring::durable::IoPolicy`), and reopening the
//! on-disk artifact must yield *exactly* the pre-save or post-save
//! state — never garbage, never a panic, never a silent wrong answer.
//!
//! Each sweep arms a fault at injection index N, attempts the
//! operation, and checks `disarm()`: once it reports the fault never
//! fired, the sweep has walked past the operation's last IO call and
//! terminates. The fault layer's crash model makes every IO call after
//! the first failure fail too, so a fired fault behaves like the
//! process dying at that point.
//!
//! Fault state is process-global, so all tests serialize on one mutex.
//! CI runs individual categories by test-name filter
//! (`cargo test --test crash_consistency heap_save`, …).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use ring::durable::{arm, disarm, is_injected, IoPolicy};
use ring::io::{load_from_file, save_to_file};
use ring::mapped::{open_index, write_index, OpenMode};
use ring::ring::RingOptions;
use ring::wal::{Wal, WalBatch, WalOp};
use ring::{Dict, Graph, Ring, Triple};

static FAULTS: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    FAULTS.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rpq_crash_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The four kill-style fault categories (bit flips are a read-side
/// corruption model, exercised by the fuzz suites instead).
const CATEGORIES: [&str; 4] = ["write", "short", "fsync", "rename"];

fn policy(category: &str, n: u64) -> IoPolicy {
    match category {
        "write" => IoPolicy {
            fail_write: Some(n),
            ..IoPolicy::default()
        },
        "short" => IoPolicy {
            short_write: Some(n),
            ..IoPolicy::default()
        },
        "fsync" => IoPolicy {
            fail_fsync: Some(n),
            ..IoPolicy::default()
        },
        "rename" => IoPolicy {
            fail_rename: Some(n),
            ..IoPolicy::default()
        },
        other => panic!("unknown fault category {other}"),
    }
}

/// Hard cap on sweep length; every save path here has far fewer IO
/// calls, so hitting this means the sweep is not terminating.
const SWEEP_LIMIT: u64 = 10_000;

fn old_ring() -> Ring {
    let g = Graph::from_triples(vec![
        Triple::new(0, 0, 1),
        Triple::new(1, 0, 2),
        Triple::new(2, 1, 0),
    ]);
    Ring::build(&g, RingOptions::default())
}

fn new_ring() -> Ring {
    let g = Graph::from_triples(vec![
        Triple::new(0, 0, 2),
        Triple::new(1, 1, 3),
        Triple::new(2, 0, 3),
        Triple::new(3, 1, 0),
        Triple::new(3, 0, 1),
    ]);
    Ring::build(&g, RingOptions::default())
}

fn triples(ring: &Ring) -> Vec<Triple> {
    let mut v: Vec<Triple> = ring.iter_triples().collect();
    v.sort();
    v
}

/// Sweep one fault category over a closure that rewrites `path` from
/// the old artifact to the new one. `reset` restores the old artifact
/// (runs unarmed before each attempt); `attempt` performs the faulted
/// save; `observe` reopens the artifact and classifies it.
fn sweep<R: PartialEq + std::fmt::Debug>(
    category: &str,
    old_state: &R,
    new_state: &R,
    mut reset: impl FnMut(),
    mut attempt: impl FnMut() -> std::io::Result<()>,
    mut observe: impl FnMut() -> R,
) {
    let mut n = 0u64;
    loop {
        reset();
        arm(policy(category, n));
        let res = attempt();
        let fired = disarm();
        if !fired {
            res.unwrap_or_else(|e| panic!("[{category}:{n}] save failed with no fault armed: {e}"));
            let got = observe();
            assert_eq!(
                &got, new_state,
                "[{category}:{n}] clean save did not produce the new state"
            );
            return;
        }
        if let Err(e) = &res {
            assert!(
                is_injected(e),
                "[{category}:{n}] error is not the injected fault: {e}"
            );
        }
        let got = observe();
        assert!(
            &got == old_state || &got == new_state,
            "[{category}:{n}] reopened state is neither old nor new: {got:?}"
        );
        n += 1;
        assert!(
            n < SWEEP_LIMIT,
            "[{category}] fault sweep did not terminate"
        );
    }
}

/// Killing `save_to_file` (heap stream format, checksum footer) at any
/// point leaves the previous file bytes untouched; only a fully clean
/// save publishes the new ring.
#[test]
fn heap_save_is_old_or_new_under_every_fault() {
    let _guard = lock_faults();
    let dir = tmpdir("heap");
    let path = dir.join("ring.bin");
    let old = old_ring();
    let new = new_ring();
    let (old_t, new_t) = (triples(&old), triples(&new));

    for category in CATEGORIES {
        sweep(
            category,
            &old_t,
            &new_t,
            || save_to_file(&old, &path).unwrap(),
            || save_to_file(&new, &path),
            || {
                let loaded: Ring = load_from_file(&path).unwrap_or_else(|e| {
                    panic!("[{category}] interrupted save left {path:?} unreadable: {e}")
                });
                triples(&loaded)
            },
        );
    }
}

fn sample_index(which: &str) -> (Ring, Dict, Dict) {
    let text = match which {
        "old" => {
            "<http://x/a> <http://x/p> <http://x/b>\n\
             <http://x/b> <http://x/p> <http://x/c>\n\
             <http://x/c> <http://x/q> <http://x/a>\n"
        }
        _ => {
            "<http://x/a> <http://x/p> <http://x/c>\n\
             <http://x/b> <http://x/q> <http://x/d>\n\
             <http://x/c> <http://x/p> <http://x/d>\n\
             <http://x/d> <http://x/q> <http://x/a>\n\
             <http://x/d> <http://x/p> <http://x/b>\n"
        }
    };
    let (g, nodes, preds) = Graph::parse_text(text).unwrap();
    (Ring::build(&g, RingOptions::default()), nodes, preds)
}

/// Killing `mapped::write_index` (`RRPQM01` v2, per-section CRCs) at
/// any point leaves the previous index intact and checksum-verifiable.
#[test]
fn mapped_write_is_old_or_new_under_every_fault() {
    let _guard = lock_faults();
    let dir = tmpdir("mapped");
    let path = dir.join("index.rpqm");
    let (old_ring, old_nodes, old_preds) = sample_index("old");
    let (new_ring, new_nodes, new_preds) = sample_index("new");
    let (old_t, new_t) = (triples(&old_ring), triples(&new_ring));

    for category in CATEGORIES {
        sweep(
            category,
            &old_t,
            &new_t,
            || {
                write_index(&path, &old_ring, &old_nodes, &old_preds).unwrap();
            },
            || write_index(&path, &new_ring, &new_nodes, &new_preds).map(|_| ()),
            || {
                // Heap mode re-verifies every section CRC on open, so a
                // surviving file is also proven uncorrupted.
                let idx = open_index(&path, OpenMode::Heap).unwrap_or_else(|e| {
                    panic!("[{category}] interrupted write left {path:?} unreadable: {e}")
                });
                triples(&idx.ring)
            },
        );
    }
}

fn wal_ops(tag: &str) -> Vec<WalOp> {
    vec![
        WalOp::Insert {
            s: format!("s-{tag}"),
            p: "p".into(),
            o: format!("o-{tag}"),
        },
        WalOp::Delete {
            s: format!("s-{tag}"),
            p: "q".into(),
            o: "gone".into(),
        },
    ]
}

fn batch_key(batches: &[WalBatch]) -> Vec<(u64, usize)> {
    batches.iter().map(|b| (b.epoch, b.ops.len())).collect()
}

/// Killing `Wal::append_batch` at any point means recovery sees either
/// every batch up to the previous append, or the new batch as well —
/// torn frames and unacknowledged tails are truncated, never surfaced.
#[test]
fn wal_append_is_old_or_new_under_every_fault() {
    let _guard = lock_faults();
    let dir = tmpdir("wal_append");
    let path = dir.join("db.wal");
    let first = wal_ops("first");
    let second = wal_ops("second");
    let old_key = vec![(2u64, first.len())];
    let new_key = vec![(2u64, first.len()), (3u64, second.len())];

    // Rename never happens on the append path, so write/short/fsync
    // are the categories with injection points to sweep.
    for category in ["write", "short", "fsync"] {
        let mut n = 0u64;
        loop {
            let mut wal = Wal::create(&path, 1).unwrap();
            wal.append_batch(&first, 2).unwrap();
            arm(policy(category, n));
            let res = wal.append_batch(&second, 3);
            let fired = disarm();
            drop(wal); // crash model: the handle dies with the process
            let (_, recovery) = Wal::recover(&path).unwrap_or_else(|e| {
                panic!("[{category}:{n}] torn append left {path:?} unrecoverable: {e}")
            });
            assert_eq!(recovery.base_epoch, 1, "[{category}:{n}]");
            let key = batch_key(&recovery.batches);
            if !fired {
                res.unwrap_or_else(|e| panic!("[{category}:{n}] clean append failed: {e}"));
                assert_eq!(key, new_key, "[{category}:{n}]");
                break;
            }
            if let Err(e) = &res {
                assert!(
                    is_injected(e),
                    "[{category}:{n}] not the injected fault: {e}"
                );
            }
            assert!(
                key == old_key || key == new_key,
                "[{category}:{n}] recovered batches are neither old nor new: {key:?}"
            );
            n += 1;
            assert!(
                n < SWEEP_LIMIT,
                "[{category}] append sweep did not terminate"
            );
        }
    }
}

/// Killing `Wal::rotate` leaves either the pre-rotation log (all
/// batches intact) or the fresh empty log. A header torn mid-write is
/// recognizable (file shorter than the fsynced header) and treated as
/// the old state being superseded — the snapshot that triggered the
/// rotation already holds the data.
#[test]
fn wal_rotate_is_old_or_new_under_every_fault() {
    let _guard = lock_faults();
    let dir = tmpdir("wal_rotate");
    let path = dir.join("db.wal");
    let ops = wal_ops("pre");

    for category in ["write", "short", "fsync"] {
        let mut n = 0u64;
        loop {
            let mut w = Wal::create(&path, 1).unwrap();
            w.append_batch(&ops, 2).unwrap();
            arm(policy(category, n));
            let res = w.rotate(9);
            let fired = disarm();
            drop(w); // crash model: the handle dies with the process

            if !fired {
                res.unwrap_or_else(|e| panic!("[{category}:{n}] clean rotate failed: {e}"));
                let recovery = Wal::inspect(&path).unwrap();
                assert_eq!(recovery.base_epoch, 9, "[{category}:{n}]");
                assert!(recovery.batches.is_empty(), "[{category}:{n}]");
                break;
            }
            assert!(res.is_err(), "[{category}:{n}] fired fault but rotate Ok");
            match Wal::inspect(&path) {
                Ok(recovery) => {
                    // Old log intact, or new header already durable.
                    if recovery.base_epoch == 1 {
                        assert_eq!(batch_key(&recovery.batches), vec![(2, ops.len())]);
                    } else {
                        assert_eq!(recovery.base_epoch, 9, "[{category}:{n}]");
                        assert!(recovery.batches.is_empty(), "[{category}:{n}]");
                    }
                }
                Err(_) => {
                    // Only a sub-header torn file is allowed to be
                    // unparseable — exactly what open_durable recreates.
                    let len = std::fs::metadata(&path).unwrap().len();
                    assert!(
                        len < ring::wal::WAL_HEADER_LEN,
                        "[{category}:{n}] unreadable WAL with a full header ({len} bytes)"
                    );
                }
            }
            n += 1;
            assert!(
                n < SWEEP_LIMIT,
                "[{category}] rotate sweep did not terminate"
            );
        }
    }
}

/// `atomic_write` removes its temp file on every failure path it can
/// reach, and `cleanup_orphans` sweeps the ones a crash strands.
#[test]
fn interrupted_saves_never_accumulate_temp_files() {
    let _guard = lock_faults();
    let dir = tmpdir("orphans");
    let path = dir.join("ring.bin");
    let old = old_ring();
    let new = new_ring();
    save_to_file(&old, &path).unwrap();

    for category in CATEGORIES {
        let mut n = 0u64;
        loop {
            arm(policy(category, n));
            let res = save_to_file(&new, &path);
            let fired = disarm();
            if !fired {
                res.unwrap();
                break;
            }
            n += 1;
            assert!(n < SWEEP_LIMIT);
        }
    }
    // Whatever the interrupted attempts left behind, one recovery
    // sweep returns the directory to exactly the published artifact.
    ring::durable::cleanup_orphans(&path);
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .filter(|name| name != "ring.bin")
        .collect();
    assert!(leftovers.is_empty(), "stranded files: {leftovers:?}");
}

/// `RPQ_IO_FAULTS` must parse every spec the CI matrix uses, and must
/// fail loudly on typos instead of silently disabling the sweep.
#[test]
fn io_policy_env_specs_parse() {
    let cases = [
        ("write:0", policy("write", 0)),
        ("short:3", policy("short", 3)),
        ("fsync:1", policy("fsync", 1)),
        ("rename:0", policy("rename", 0)),
    ];
    for (spec, want) in cases {
        let got = parse_spec(spec).unwrap_or_else(|e| panic!("{spec} failed to parse: {e}"));
        assert_eq!(got, want, "{spec}");
    }
    let flip = parse_spec("flip:128.3").unwrap();
    assert_eq!(flip.flip_read, Some((128, 3)));
    let combo = parse_spec("write:2,fsync:0").unwrap();
    assert_eq!(combo.fail_write, Some(2));
    assert_eq!(combo.fail_fsync, Some(0));
    assert!(parse_spec("wite:2").is_err(), "typo must be rejected");
    assert!(parse_spec("flip:abc").is_err());
}

/// Round-trips a spec through the `RPQ_IO_FAULTS` parser. Env mutation
/// is process-global, so serialize on the fault lock.
fn parse_spec(spec: &str) -> std::io::Result<IoPolicy> {
    let _guard = lock_faults();
    std::env::set_var("RPQ_IO_FAULTS", spec);
    let parsed = IoPolicy::from_env();
    std::env::remove_var("RPQ_IO_FAULTS");
    parsed.map(|opt| opt.expect("spec set but parsed as None"))
}
