//! Property tests for the ring: construction round-trips, LF-cycle laws,
//! backward-search consistency with a naive triple scan, on random graphs.

use proptest::prelude::*;
use ring::ring::{BoundaryKind, RingOptions};
use ring::{Graph, Id, Ring, Triple};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1u64..12,
        1u64..5,
        prop::collection::vec((0u64..12, 0u64..5, 0u64..12), 0..80),
    )
        .prop_map(|(n_nodes, n_preds, raw)| {
            let triples = raw
                .into_iter()
                .map(|(s, p, o)| Triple::new(s % n_nodes, p % n_preds, o % n_nodes))
                .collect();
            Graph::new(triples, n_nodes, n_preds)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn triples_roundtrip(g in arb_graph()) {
        let r = Ring::build(&g, RingOptions { with_inverses: false, node_boundaries: BoundaryKind::Sparse });
        let mut decoded: Vec<Triple> = r.iter_triples().collect();
        decoded.sort_unstable();
        prop_assert_eq!(decoded.as_slice(), g.triples());
    }

    #[test]
    fn lf_cycle_identity(g in arb_graph()) {
        let r = Ring::build(&g, RingOptions { with_inverses: false, node_boundaries: BoundaryKind::EliasFano });
        for i in 0..r.n_triples() {
            prop_assert_eq!(r.lf_o(r.lf_s(r.lf_p(i))), i);
        }
    }

    #[test]
    fn contains_matches_graph(g in arb_graph()) {
        let r = Ring::build(&g, RingOptions { with_inverses: false, node_boundaries: BoundaryKind::Sparse });
        for t in g.triples() {
            prop_assert!(r.contains(t.s, t.p, t.o));
        }
        // Some random non-edges.
        for s in 0..g.n_nodes().min(4) {
            for p in 0..g.n_preds().min(3) {
                for o in 0..g.n_nodes().min(4) {
                    prop_assert_eq!(r.contains(s, p, o), g.contains(s, p, o));
                }
            }
        }
    }

    #[test]
    fn backward_step_lists_exact_subjects(g in arb_graph()) {
        let r = Ring::build(&g, RingOptions { with_inverses: false, node_boundaries: BoundaryKind::Sparse });
        for o in 0..g.n_nodes() {
            for p in 0..g.n_preds() {
                let mut got = Vec::new();
                r.subjects_for(p, o, &mut |s| got.push(s));
                let mut expected: Vec<Id> = g
                    .triples()
                    .iter()
                    .filter(|t| t.p == p && t.o == o)
                    .map(|t| t.s)
                    .collect();
                expected.sort_unstable();
                expected.dedup();
                prop_assert_eq!(got, expected, "subjects_for({}, {})", p, o);
            }
        }
    }

    #[test]
    fn completion_contains_both_directions(g in arb_graph()) {
        let r = Ring::build(&g, RingOptions::default());
        let np = g.n_preds();
        for t in g.triples() {
            prop_assert!(r.contains(t.s, t.p, t.o));
            prop_assert!(r.contains(t.o, t.p + np, t.s));
            prop_assert_eq!(r.inverse_label(t.p), t.p + np);
        }
        prop_assert_eq!(r.n_triples(), g.completed().len());
    }

    #[test]
    fn objects_for_matches_graph(g in arb_graph()) {
        let r = Ring::build(&g, RingOptions { with_inverses: false, node_boundaries: BoundaryKind::EliasFano });
        for s in 0..g.n_nodes() {
            for p in 0..g.n_preds() {
                let mut got = Vec::new();
                r.objects_for(s, p, &mut |o| got.push(o));
                let mut expected: Vec<Id> = g
                    .triples()
                    .iter()
                    .filter(|t| t.s == s && t.p == p)
                    .map(|t| t.o)
                    .collect();
                expected.sort_unstable();
                expected.dedup();
                prop_assert_eq!(got, expected, "objects_for({}, {})", s, p);
            }
        }
    }
}
