//! Mapped-format (`RRPQM01`) persistence suite: write/open round-trips
//! over every boundary representation, heap-vs-mmap load equivalence,
//! and corruption rejection — truncation at every section boundary,
//! oversized declared lengths, wrong magic (naming both stream
//! formats), version skew, and misaligned table-of-contents offsets.

use std::path::PathBuf;

use ring::mapped::{open_index, write_index, OpenMode, HEADER_LEN, MAPPED_MAGIC};
use ring::ring::{BoundaryKind, RingOptions};
use ring::{Dict, Graph, Ring, Triple};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rpq_mapped_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small graph with repeated subjects/objects, a rare predicate, and
/// names that exercise the dictionary's sorted-order search.
fn sample() -> (Graph, Dict, Dict) {
    let text = "\
        <http://x/alice> <http://x/knows> <http://x/bob>\n\
        <http://x/bob> <http://x/knows> <http://x/carol>\n\
        <http://x/carol> <http://x/knows> <http://x/alice>\n\
        <http://x/alice> <http://x/likes> <http://x/carol>\n\
        <http://x/carol> <http://x/likes> <http://x/carol>\n\
        <http://x/dave> <http://x/knows> <http://x/alice>\n\
        <http://x/bob> <http://x/works_at> <http://x/acme>\n\
        <http://x/dave> <http://x/works_at> <http://x/acme>\n\
        <http://x/dave> <http://x/knows> <http://x/知り合い>\n";
    let (g, nodes, preds) = Graph::parse_text(text).unwrap();
    (g, nodes, preds)
}

fn assert_rings_equal(a: &Ring, b: &Ring) {
    assert_eq!(a.n_triples(), b.n_triples());
    assert_eq!(a.n_nodes(), b.n_nodes());
    assert_eq!(a.n_preds(), b.n_preds());
    assert_eq!(a.n_preds_base(), b.n_preds_base());
    assert_eq!(a.has_inverses(), b.has_inverses());
    let ta: Vec<Triple> = a.iter_triples().collect();
    let tb: Vec<Triple> = b.iter_triples().collect();
    assert_eq!(ta, tb);
    for s in 0..a.n_nodes() {
        assert_eq!(a.subject_range(s), b.subject_range(s), "subject {s}");
        assert_eq!(a.object_range(s), b.object_range(s), "object {s}");
    }
    for p in 0..a.n_preds() {
        assert_eq!(a.pred_range(p), b.pred_range(p), "pred {p}");
        assert_eq!(a.pred_cardinality(p), b.pred_cardinality(p));
    }
}

fn assert_dicts_equal(a: &Dict, b: &Dict) {
    assert_eq!(a.len(), b.len());
    for (id, name) in a.iter() {
        assert_eq!(b.name(id), name);
        assert_eq!(b.get(name), Some(id), "lookup of {name}");
    }
    assert_eq!(b.get("<no-such-name>"), None);
}

#[test]
fn roundtrip_every_boundary_kind_and_inverse_setting() {
    let dir = tmpdir("roundtrip");
    let (graph, nodes, preds) = sample();
    for kind in [
        BoundaryKind::Dense,
        BoundaryKind::Sparse,
        BoundaryKind::EliasFano,
    ] {
        for with_inverses in [true, false] {
            let ring = Ring::build(
                &graph,
                RingOptions {
                    with_inverses,
                    node_boundaries: kind,
                },
            );
            let path = dir.join(format!("{kind:?}_{with_inverses}.rpqm"));
            let written = write_index(&path, &ring, &nodes, &preds).unwrap();
            assert_eq!(written, std::fs::metadata(&path).unwrap().len());
            let idx = open_index(&path, OpenMode::Heap).unwrap();
            assert_rings_equal(&ring, &idx.ring);
            assert_dicts_equal(&nodes, &idx.nodes);
            assert_dicts_equal(&preds, &idx.preds);
            assert!(idx.nodes.is_mapped() && idx.preds.is_mapped());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_graph_roundtrips() {
    let dir = tmpdir("empty");
    let ring = Ring::build(&Graph::new(vec![], 0, 0), RingOptions::default());
    let path = dir.join("empty.rpqm");
    write_index(&path, &ring, &Dict::new(), &Dict::new()).unwrap();
    let idx = open_index(&path, OpenMode::Heap).unwrap();
    assert_eq!(idx.ring.n_triples(), 0);
    assert_eq!(idx.nodes.len(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(all(unix, target_pointer_width = "64"))]
#[test]
fn heap_and_mmap_opens_are_equivalent() {
    use succinct::ResidentMode;
    let dir = tmpdir("modes");
    let (graph, nodes, preds) = sample();
    let ring = Ring::build(&graph, RingOptions::default());
    let path = dir.join("idx.rpqm");
    write_index(&path, &ring, &nodes, &preds).unwrap();

    let heap = open_index(&path, OpenMode::Heap).unwrap();
    let mapped = open_index(&path, OpenMode::Mmap).unwrap();
    assert_eq!(heap.resident, ResidentMode::Heap);
    assert_eq!(heap.mapped_bytes, 0);
    assert_eq!(mapped.resident, ResidentMode::Mmap);
    assert_eq!(mapped.mapped_bytes, std::fs::metadata(&path).unwrap().len());
    assert_rings_equal(&heap.ring, &mapped.ring);
    assert_rings_equal(&ring, &mapped.ring);
    assert_dicts_equal(&heap.nodes, &mapped.nodes);
    assert_dicts_equal(&heap.preds, &mapped.preds);
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes `bytes` to a file and opens it heap-resident.
fn open_bytes(dir: &std::path::Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let path = dir.join(name);
    std::fs::write(&path, bytes).unwrap();
    open_index(&path, OpenMode::Heap).map(|_| ())
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Recomputes section `i`'s CRC32C and patches it into the TOC, so a
/// deliberate payload mutation exercises the *structural* validation
/// rather than being short-circuited by the checksum check.
fn fix_crc(bytes: &mut [u8], i: usize) {
    let off = u64_at(bytes, 24 + i * 32 + 8) as usize;
    let len = u64_at(bytes, 24 + i * 32 + 16) as usize;
    let crc = succinct::checksum::crc32c(&bytes[off..off + len]);
    put_u64(bytes, 24 + i * 32 + 24, crc as u64);
}

/// A valid file image plus its parsed TOC `(offset, len)` list.
fn valid_image(dir: &std::path::Path) -> (Vec<u8>, Vec<(usize, usize)>) {
    let (graph, nodes, preds) = sample();
    let ring = Ring::build(&graph, RingOptions::default());
    let path = dir.join("valid.rpqm");
    write_index(&path, &ring, &nodes, &preds).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let toc = (0..9)
        .map(|i| {
            let at = 24 + i * 32;
            (
                u64_at(&bytes, at + 8) as usize,
                u64_at(&bytes, at + 16) as usize,
            )
        })
        .collect();
    (bytes, toc)
}

#[test]
fn truncation_at_every_section_boundary_is_rejected() {
    let dir = tmpdir("truncate");
    let (bytes, toc) = valid_image(&dir);
    // Sanity: the intact image opens.
    assert!(open_bytes(&dir, "ok.rpqm", &bytes).is_ok());
    let mut cuts: Vec<usize> = vec![0, 7, HEADER_LEN - 1, bytes.len() - 1];
    for &(off, len) in &toc {
        cuts.push(off);
        cuts.push(off + len / 2);
        cuts.push(off + len.saturating_sub(1));
    }
    for cut in cuts {
        if cut >= bytes.len() {
            continue;
        }
        let err = open_bytes(&dir, "cut.rpqm", &bytes[..cut])
            .expect_err(&format!("truncation at {cut} must fail"));
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut {cut}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_declared_lengths_are_rejected() {
    let dir = tmpdir("oversized");
    let (bytes, toc) = valid_image(&dir);
    for (i, &(_, len)) in toc.iter().enumerate() {
        // Growing any section's declared length either runs past the
        // end of the file or leaves trailing bytes in the section; the
        // reader must reject both.
        let mut bad = bytes.clone();
        put_u64(&mut bad, 24 + i * 32 + 16, len as u64 + 8);
        assert!(
            open_bytes(&dir, "grown.rpqm", &bad).is_err(),
            "section {i} grown by 8"
        );
        let mut huge = bytes.clone();
        put_u64(&mut huge, 24 + i * 32 + 16, 1 << 40);
        assert!(
            open_bytes(&dir, "huge.rpqm", &huge).is_err(),
            "section {i} with a 2^40 length"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_magic_names_the_stream_formats() {
    let dir = tmpdir("magic");
    let (bytes, _) = valid_image(&dir);
    for stream_magic in [b"RRPQDB01", b"RRPQDU01"] {
        let mut bad = bytes.clone();
        bad[..8].copy_from_slice(stream_magic);
        let err = open_bytes(&dir, "stream.rpqm", &bad).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("RRPQDB01") && msg.contains("RRPQDU01"),
            "error must name the stream formats: {msg}"
        );
    }
    let mut garbage = bytes.clone();
    garbage[..8].copy_from_slice(b"GARBAGE!");
    let msg = open_bytes(&dir, "garbage.rpqm", &garbage)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("magic"), "{msg}");

    let mut versioned = bytes.clone();
    put_u64(&mut versioned, 8, 99);
    let msg = open_bytes(&dir, "version.rpqm", &versioned)
        .unwrap_err()
        .to_string();
    assert!(msg.contains("version 99"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The soundness invariant the module documentation points at: a
/// deliberately misaligned section offset must be rejected before any
/// `&[u64]` view is formed.
#[test]
fn toc_offsets_must_be_aligned() {
    let dir = tmpdir("align");
    let (bytes, toc) = valid_image(&dir);
    for (i, &(off, _)) in toc.iter().enumerate() {
        for bump in [1usize, 4] {
            let mut bad = bytes.clone();
            put_u64(&mut bad, 24 + i * 32 + 8, (off + bump) as u64);
            let err = open_bytes(&dir, "misaligned.rpqm", &bad)
                .expect_err(&format!("section {i} offset bumped by {bump}"));
            assert!(err.to_string().contains("aligned"), "section {i}: {err}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inconsistent_metadata_is_rejected() {
    let dir = tmpdir("meta");
    let (bytes, toc) = valid_image(&dir);
    let meta_off = toc[0].0;
    assert_eq!(meta_off, HEADER_LEN);

    // Triple count off by one: column length checks fire.
    let mut bad = bytes.clone();
    put_u64(&mut bad, meta_off, u64_at(&bytes, meta_off) + 1);
    fix_crc(&mut bad, 0);
    assert!(open_bytes(&dir, "count.rpqm", &bad).is_err());

    // Invalid has_inverses flag.
    let mut bad = bytes.clone();
    put_u64(&mut bad, meta_off + 32, 7);
    fix_crc(&mut bad, 0);
    let msg = open_bytes(&dir, "flag.rpqm", &bad).unwrap_err().to_string();
    assert!(msg.contains("has_inverses"), "{msg}");

    // Node universe shrunk: dictionary / boundary universes disagree.
    let mut bad = bytes.clone();
    let n_nodes = u64_at(&bytes, meta_off + 8);
    put_u64(&mut bad, meta_off + 8, n_nodes - 1);
    fix_crc(&mut bad, 0);
    assert!(open_bytes(&dir, "nodes.rpqm", &bad).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// The magic constant is the public contract other layers sniff on.
#[test]
fn magic_matches_the_public_constant() {
    let dir = tmpdir("sniff");
    let (bytes, _) = valid_image(&dir);
    assert_eq!(&bytes[..8], &MAPPED_MAGIC);
    assert!(ring::mapped::is_mapped_file(&dir.join("valid.rpqm")));
    assert!(!ring::mapped::is_mapped_file(&dir.join("absent.rpqm")));
    std::fs::remove_dir_all(&dir).ok();
}

/// Deterministic xorshift64* for the fuzz sweep: reproducible without
/// any RNG dependency, seed printed into every assertion context.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Every single-bit flip over a full `RRPQM01` image — exhaustive over
/// the header + TOC, seeded-random over the payload — must either be
/// *detected* (typed open error) or *harmless* (the index opens and
/// answers identically, e.g. a flip in alignment padding no checksum
/// covers). Never a panic, never silently wrong data.
#[test]
fn bit_flip_fuzz_never_yields_wrong_answers() {
    let dir = tmpdir("bitflip");
    let (bytes, _) = valid_image(&dir);
    let (graph, nodes, preds) = sample();
    let expect_ring = Ring::build(&graph, RingOptions::default());
    let expect: Vec<Triple> = {
        let mut v: Vec<Triple> = expect_ring.iter_triples().collect();
        v.sort();
        v
    };

    let mut flips: Vec<(usize, u8)> = Vec::new();
    // Header + TOC: every bit (this is where a flip could silently
    // redirect a section, so cover it exhaustively).
    for off in 0..HEADER_LEN.min(bytes.len()) {
        for bit in 0..8u8 {
            flips.push((off, bit));
        }
    }
    // Payload: seeded sample across the rest of the file.
    let mut rng = XorShift(0x1CDE_2022_D00D_F00D);
    for _ in 0..800 {
        let off = HEADER_LEN + (rng.next() as usize) % (bytes.len() - HEADER_LEN);
        let bit = (rng.next() & 7) as u8;
        flips.push((off, bit));
    }

    let path = dir.join("flip.rpqm");
    let mut harmless = 0usize;
    for (off, bit) in flips {
        let mut mutated = bytes.clone();
        mutated[off] ^= 1 << bit;
        std::fs::write(&path, &mutated).unwrap();
        match open_index(&path, OpenMode::Heap) {
            Err(_) => {} // detected: typed io::Error, no panic
            Ok(idx) => {
                let mut got: Vec<Triple> = idx.ring.iter_triples().collect();
                got.sort();
                assert_eq!(
                    got, expect,
                    "flip at byte {off} bit {bit} opened with WRONG triples"
                );
                assert_dicts_equal(&idx.nodes, &nodes);
                assert_dicts_equal(&idx.preds, &preds);
                harmless += 1;
            }
        }
    }
    // The original image must still open (the sweep is non-destructive
    // to its inputs), and *some* flips must have been caught — if every
    // flip opened fine the checksums are not being checked at all.
    assert!(open_bytes(&dir, "intact.rpqm", &bytes).is_ok());
    assert!(
        harmless < 800 + HEADER_LEN * 8,
        "no flip was ever detected: checksum verification is dead code"
    );
    std::fs::remove_dir_all(&dir).ok();
}
