//! Persistence round-trips on random inputs: every boundary
//! representation, graphs, dictionaries, and full rings must survive a
//! write/read cycle bit-exactly in behaviour.

use proptest::prelude::*;
use ring::ring::{BoundaryKind, RingOptions};
use ring::{Boundaries, Dict, Graph, Ring, Triple};
use succinct::io::Persist;

fn roundtrip<T: Persist>(x: &T) -> T {
    let mut buf = Vec::new();
    x.write_to(&mut buf).unwrap();
    T::read_from(&mut buf.as_slice()).unwrap()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1u64..10,
        1u64..4,
        prop::collection::vec((0u64..10, 0u64..4, 0u64..10), 0..50),
    )
        .prop_map(|(n_nodes, n_preds, raw)| {
            Graph::new(
                raw.into_iter()
                    .map(|(s, p, o)| Triple::new(s % n_nodes, p % n_preds, o % n_nodes))
                    .collect(),
                n_nodes,
                n_preds,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn boundaries_roundtrip_all_kinds(counts in prop::collection::vec(0u64..20, 1..30)) {
        for b in [
            Boundaries::dense_from_counts(&counts),
            Boundaries::sparse_from_counts(&counts),
            Boundaries::elias_fano_from_counts(&counts),
        ] {
            let back = roundtrip(&b);
            for c in 0..=counts.len() as u64 {
                prop_assert_eq!(b.get(c), back.get(c), "C[{}]", c);
            }
            let n = b.get(counts.len() as u64);
            for pos in 0..n {
                prop_assert_eq!(b.owner(pos), back.owner(pos));
            }
        }
    }

    #[test]
    fn ring_roundtrip_all_kinds(g in arb_graph()) {
        for kind in [BoundaryKind::Dense, BoundaryKind::Sparse, BoundaryKind::EliasFano] {
            let ring = Ring::build(&g, RingOptions { with_inverses: true, node_boundaries: kind });
            let back = roundtrip(&ring);
            prop_assert_eq!(back.n_triples(), ring.n_triples());
            prop_assert_eq!(back.n_preds_base(), ring.n_preds_base());
            let a: Vec<Triple> = ring.iter_triples().collect();
            let b: Vec<Triple> = back.iter_triples().collect();
            prop_assert_eq!(a, b, "{:?}", kind);
        }
    }

    #[test]
    fn graph_and_dict_roundtrip(g in arb_graph(), names in prop::collection::vec("[a-z]{1,8}", 0..20)) {
        let back = roundtrip(&g);
        prop_assert_eq!(g.triples(), back.triples());

        let mut d = Dict::new();
        for n in &names {
            d.intern(n);
        }
        let back = roundtrip(&d);
        prop_assert_eq!(back.len(), d.len());
        for (id, name) in d.iter() {
            prop_assert_eq!(back.get(name), Some(id));
        }
    }

    #[test]
    fn truncated_payloads_never_panic(
        g in arb_graph(),
        cut_frac in 0.0f64..1.0,
    ) {
        let ring = Ring::build(&g, RingOptions::default());
        let mut buf = Vec::new();
        ring.write_to(&mut buf).unwrap();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        // Every truncation must produce Err, never a panic or a bogus Ok.
        if cut < buf.len() {
            prop_assert!(Ring::read_from(&mut &buf[..cut]).is_err());
        }
    }
}

/// Degenerate alphabet: an empty graph (zero predicates) stores its
/// wavelet sigma clamped to 1; the load-time inverse-alphabet check
/// must accept it (found by CLI probing: `build empty.nt` produced an
/// index that then failed to load).
#[test]
fn empty_graph_ring_roundtrips() {
    let g = Graph::new(vec![], 0, 0);
    for kind in [
        BoundaryKind::Dense,
        BoundaryKind::Sparse,
        BoundaryKind::EliasFano,
    ] {
        let ring = Ring::build(
            &g,
            RingOptions {
                with_inverses: true,
                node_boundaries: kind,
            },
        );
        let back = roundtrip(&ring);
        assert_eq!(back.n_triples(), 0);
        assert_eq!(back.n_preds_base(), 0);
        assert_eq!(back.iter_triples().count(), 0);
    }
}
