//! Persistence round-trips on random inputs: every boundary
//! representation, graphs, dictionaries, and full rings must survive a
//! write/read cycle bit-exactly in behaviour.

use proptest::prelude::*;
use ring::delta::DeltaIndex;
use ring::ring::{BoundaryKind, RingOptions};
use ring::{Boundaries, Dict, Graph, Ring, Triple};
use succinct::io::Persist;

fn roundtrip<T: Persist>(x: &T) -> T {
    let mut buf = Vec::new();
    x.write_to(&mut buf).unwrap();
    T::read_from(&mut buf.as_slice()).unwrap()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1u64..10,
        1u64..4,
        prop::collection::vec((0u64..10, 0u64..4, 0u64..10), 0..50),
    )
        .prop_map(|(n_nodes, n_preds, raw)| {
            Graph::new(
                raw.into_iter()
                    .map(|(s, p, o)| Triple::new(s % n_nodes, p % n_preds, o % n_nodes))
                    .collect(),
                n_nodes,
                n_preds,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn boundaries_roundtrip_all_kinds(counts in prop::collection::vec(0u64..20, 1..30)) {
        for b in [
            Boundaries::dense_from_counts(&counts),
            Boundaries::sparse_from_counts(&counts),
            Boundaries::elias_fano_from_counts(&counts),
        ] {
            let back = roundtrip(&b);
            for c in 0..=counts.len() as u64 {
                prop_assert_eq!(b.get(c), back.get(c), "C[{}]", c);
            }
            let n = b.get(counts.len() as u64);
            for pos in 0..n {
                prop_assert_eq!(b.owner(pos), back.owner(pos));
            }
        }
    }

    #[test]
    fn ring_roundtrip_all_kinds(g in arb_graph()) {
        for kind in [BoundaryKind::Dense, BoundaryKind::Sparse, BoundaryKind::EliasFano] {
            let ring = Ring::build(&g, RingOptions { with_inverses: true, node_boundaries: kind });
            let back = roundtrip(&ring);
            prop_assert_eq!(back.n_triples(), ring.n_triples());
            prop_assert_eq!(back.n_preds_base(), ring.n_preds_base());
            let a: Vec<Triple> = ring.iter_triples().collect();
            let b: Vec<Triple> = back.iter_triples().collect();
            prop_assert_eq!(a, b, "{:?}", kind);
        }
    }

    #[test]
    fn graph_and_dict_roundtrip(g in arb_graph(), names in prop::collection::vec("[a-z]{1,8}", 0..20)) {
        let back = roundtrip(&g);
        prop_assert_eq!(g.triples(), back.triples());

        let mut d = Dict::new();
        for n in &names {
            d.intern(n);
        }
        let back = roundtrip(&d);
        prop_assert_eq!(back.len(), d.len());
        for (id, name) in d.iter() {
            prop_assert_eq!(back.get(name), Some(id));
        }
    }

    #[test]
    fn truncated_payloads_never_panic(
        g in arb_graph(),
        cut_frac in 0.0f64..1.0,
    ) {
        let ring = Ring::build(&g, RingOptions::default());
        let mut buf = Vec::new();
        ring.write_to(&mut buf).unwrap();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        // Every truncation must produce Err, never a panic or a bogus Ok.
        if cut < buf.len() {
            prop_assert!(Ring::read_from(&mut &buf[..cut]).is_err());
        }
    }
}

fn arb_delta() -> impl Strategy<Value = DeltaIndex> {
    (
        2u64..5,
        prop::collection::vec((0u64..12, 0u64..5, 0u64..12), 0..20),
        prop::collection::vec((0u64..12, 0u64..5, 0u64..12), 0..20),
    )
        .prop_map(|(base, adds, dels)| {
            let canon = |v: Vec<(u64, u64, u64)>| -> Vec<Triple> {
                v.into_iter()
                    .map(|(s, p, o)| Triple::new(s, p % base, o))
                    .collect()
            };
            // Keep the store invariant (adds and dels disjoint).
            let adds = canon(adds);
            let dels: Vec<Triple> = canon(dels)
                .into_iter()
                .filter(|t| !adds.contains(t))
                .collect();
            DeltaIndex::new(adds, dels, base)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delta store round-trip: the reloaded overlay compares equal,
    /// answers every completed-alphabet lookup identically, and
    /// write → read → write is byte-stable (the pos/osp orders are
    /// derived state, like the succinct rank directories).
    #[test]
    fn delta_roundtrip_and_byte_stability(d in arb_delta()) {
        let mut first = Vec::new();
        d.write_to(&mut first).unwrap();
        let back = DeltaIndex::read_from(&mut first.as_slice()).unwrap();
        prop_assert_eq!(&back, &d);
        let mut second = Vec::new();
        back.write_to(&mut second).unwrap();
        prop_assert_eq!(first, second, "write-read-write bytes diverged");
        // Spot-check the completed-alphabet accessors line up.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for o in 0..12 {
            for p in 0..2 * d.n_preds_base() {
                d.added_into(o, p, &mut a);
                back.added_into(o, p, &mut b);
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(d.del_count_into(o, p), back.del_count_into(o, p));
            }
        }
    }

    /// Truncated or bit-flipped delta payloads fail cleanly, never panic.
    #[test]
    fn corrupted_delta_payloads_never_panic(
        d in arb_delta(),
        cut in 0usize..64,
        flip in 0usize..32,
    ) {
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let cut = cut.min(buf.len());
        let _ = DeltaIndex::read_from(&mut &buf[..cut]);
        let mut bad = buf.clone();
        if !bad.is_empty() {
            let i = flip % bad.len();
            bad[i] ^= 0xFF;
            let _ = DeltaIndex::read_from(&mut bad.as_slice());
        }
    }
}

/// A future format bump must fail with an error naming both versions
/// (the `crates/succinct/src/io.rs` convention), not a decode panic.
#[test]
fn delta_future_format_version_is_a_clear_error() {
    use succinct::io::FORMAT_VERSION;
    let d = DeltaIndex::new(vec![Triple::new(0, 0, 1)], vec![Triple::new(1, 1, 0)], 2);
    let mut buf = Vec::new();
    d.write_to(&mut buf).unwrap();
    buf[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let err = DeltaIndex::read_from(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("{}", FORMAT_VERSION + 1))
            && msg.contains(&format!("expected {FORMAT_VERSION}")),
        "unhelpful version error: {msg}"
    );
}

/// Out-of-alphabet predicates in a tampered payload are a typed error.
#[test]
fn delta_out_of_alphabet_predicate_is_rejected() {
    let d = DeltaIndex::new(vec![Triple::new(0, 1, 2)], vec![], 2);
    let mut buf = Vec::new();
    d.write_to(&mut buf).unwrap();
    // Payload layout after magic+version: base u64, adds-len u64, then
    // (s, p, o) words; patch p up to the base alphabet size.
    let p_off = 8 + 8 + 8 + 8;
    buf[p_off..p_off + 8].copy_from_slice(&2u64.to_le_bytes());
    let err = DeltaIndex::read_from(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("base alphabet"), "{err}");
}

/// Degenerate alphabet: an empty graph (zero predicates) stores its
/// wavelet sigma clamped to 1; the load-time inverse-alphabet check
/// must accept it (found by CLI probing: `build empty.nt` produced an
/// index that then failed to load).
#[test]
fn empty_graph_ring_roundtrips() {
    let g = Graph::new(vec![], 0, 0);
    for kind in [
        BoundaryKind::Dense,
        BoundaryKind::Sparse,
        BoundaryKind::EliasFano,
    ] {
        let ring = Ring::build(
            &g,
            RingOptions {
                with_inverses: true,
                node_boundaries: kind,
            },
        );
        let back = roundtrip(&ring);
        assert_eq!(back.n_triples(), 0);
        assert_eq!(back.n_preds_base(), 0);
        assert_eq!(back.iter_triples().count(), 0);
    }
}
