//! Horizontal sharding: one graph partitioned into several sub-rings.
//!
//! The partition is by **predicate** — each base predicate's triples land
//! on one shard, chosen by greedy least-loaded binning so shard sizes
//! stay balanced — with a **subject-range fallback** for skewed
//! predicates: a predicate holding more than `⌈total/n_shards⌉` triples
//! is cut into contiguous subject-sorted chunks that bin independently,
//! so one hot predicate cannot capsize a shard. Every shard ring is built
//! over the *global* node and predicate universes (`Graph::new` with the
//! source graph's `n_nodes`/`n_preds`), which keeps ids, inverse labels
//! (`p̂ = p + |P|`) and wavelet-matrix alphabets identical across shards:
//! a scatter-gather union of per-shard results equals the unsharded
//! answer exactly.
//!
//! On disk a sharded index is a directory: one self-contained
//! [`crate::mapped`] `RRPQM01` file per shard (each carrying the full
//! dictionaries, so any shard can resolve any name) plus a CRC-footered
//! `MANIFEST` binding them together. Both are written atomically through
//! [`crate::durable`], so an interrupted save never corrupts an existing
//! index.

use std::collections::BTreeMap;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

use succinct::checksum::{CrcReader, CrcWriter};

use crate::durable::{atomic_write, finish_footer, verify_footer, FaultReader};
use crate::mapped::{self, MappedIndex, OpenMode};
use crate::ring::RingOptions;
use crate::{Dict, Graph, Id, Ring, Triple};

/// Magic bytes opening a sharded-index manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"RRPQSH01";

/// File name of the manifest inside a sharded index directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// File name of shard `i`'s `RRPQM01` file inside the directory.
pub fn shard_file_name(i: usize) -> String {
    format!("shard-{i:03}.rpqm")
}

/// A predicate-partitioned set of sub-rings over one graph.
///
/// Build once from the full graph; the shards share the graph's node and
/// predicate universes, so their per-shard answers union (with
/// deduplication for inverse labels of subject-split predicates) into
/// exactly the unsharded answer.
pub struct ShardedIndex {
    shards: Vec<Ring>,
}

impl ShardedIndex {
    /// Partitions `graph` into `n_shards` sub-rings.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn build(graph: &Graph, n_shards: usize, options: RingOptions) -> Self {
        assert!(n_shards >= 1, "a sharded index needs at least one shard");
        let parts = partition_triples(graph.triples(), n_shards);
        let shards = parts
            .into_iter()
            .map(|ts| Ring::build(&Graph::new(ts, graph.n_nodes(), graph.n_preds()), options))
            .collect();
        Self { shards }
    }

    /// Number of shards (fixed at build/open time; empty shards count).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The sub-rings, in shard order.
    pub fn shards(&self) -> &[Ring] {
        &self.shards
    }

    /// Consumes the index, handing out the sub-rings.
    pub fn into_shards(self) -> Vec<Ring> {
        self.shards
    }

    /// Total completed triples across the shards (each base triple and
    /// its inverse counted once, on whichever shard holds them).
    pub fn n_triples(&self) -> usize {
        self.shards.iter().map(|r| r.n_triples()).sum()
    }

    /// Persists the index as a directory: `shard-NNN.rpqm` per shard
    /// (each a complete `RRPQM01` file with full dictionaries) plus the
    /// CRC-footered `MANIFEST`. Returns total bytes written.
    pub fn save_dir(&self, dir: &Path, nodes: &Dict, preds: &Dict) -> io::Result<u64> {
        std::fs::create_dir_all(dir)?;
        let mut total = 0u64;
        for (i, ring) in self.shards.iter().enumerate() {
            total += mapped::write_index(&dir.join(shard_file_name(i)), ring, nodes, preds)?;
        }
        total += write_manifest(&dir.join(MANIFEST_FILE), &self.shards)?;
        Ok(total)
    }
}

/// Whether `path` is a sharded index directory (a directory holding a
/// `MANIFEST` that starts with the sharded magic).
pub fn is_sharded_dir(path: &Path) -> bool {
    if !path.is_dir() {
        return false;
    }
    let Ok(mut f) = std::fs::File::open(path.join(MANIFEST_FILE)) else {
        return false;
    };
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).is_ok() && magic == MANIFEST_MAGIC
}

/// Opens a sharded index directory: verifies the manifest checksum, then
/// opens every shard file under `mode` (each shard validates its own
/// section CRCs and cross-component shapes) and cross-checks it against
/// the manifest — shard count, per-shard triple count, and the shared
/// node/predicate universes.
pub fn open_dir(dir: &Path, mode: OpenMode) -> io::Result<Vec<MappedIndex>> {
    let manifest = read_manifest(&dir.join(MANIFEST_FILE))?;
    let mut shards = Vec::with_capacity(manifest.shard_triples.len());
    for (i, &want_triples) in manifest.shard_triples.iter().enumerate() {
        let path = dir.join(shard_file_name(i));
        let idx = mapped::open_index(&path, mode)?;
        let context = || format!("{}: shard {i}", dir.display());
        if idx.ring.n_triples() as u64 != want_triples {
            return Err(manifest_mismatch(&context(), "triple count"));
        }
        if idx.ring.n_nodes() != manifest.n_nodes {
            return Err(manifest_mismatch(&context(), "node universe"));
        }
        if idx.ring.n_preds_base() != manifest.n_preds_base {
            return Err(manifest_mismatch(&context(), "predicate universe"));
        }
        shards.push(idx);
    }
    Ok(shards)
}

fn manifest_mismatch(context: &str, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{context}: {what} does not match the manifest"),
    )
}

struct Manifest {
    n_nodes: Id,
    n_preds_base: Id,
    shard_triples: Vec<u64>,
}

fn write_manifest(path: &Path, shards: &[Ring]) -> io::Result<u64> {
    atomic_write(path, |w| {
        let mut cw = CrcWriter::new(w);
        cw.write_all(&MANIFEST_MAGIC)?;
        write_u64(&mut cw, shards.len() as u64)?;
        write_u64(&mut cw, shards[0].n_nodes())?;
        write_u64(&mut cw, shards[0].n_preds_base())?;
        for ring in shards {
            write_u64(&mut cw, ring.n_triples() as u64)?;
        }
        finish_footer(&mut cw)
    })
}

fn read_manifest(path: &Path) -> io::Result<Manifest> {
    let context = path.display().to_string();
    let file = FaultReader::new(std::fs::File::open(path)?);
    let mut r = CrcReader::new(BufReader::new(file));
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MANIFEST_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{context}: not a sharded index manifest"),
        ));
    }
    let n_shards = read_u64(&mut r)?;
    if n_shards == 0 || n_shards > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{context}: implausible shard count {n_shards}"),
        ));
    }
    let n_nodes = read_u64(&mut r)?;
    let n_preds_base = read_u64(&mut r)?;
    let mut shard_triples = Vec::with_capacity(n_shards as usize);
    for _ in 0..n_shards {
        shard_triples.push(read_u64(&mut r)?);
    }
    verify_footer(&mut r, &context)?;
    Ok(Manifest {
        n_nodes,
        n_preds_base,
        shard_triples,
    })
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Partitions base triples across `n_shards`: whole predicates bin
/// greedily onto the least-loaded shard (largest first, ties broken by
/// predicate id, so the partition is deterministic); a predicate larger
/// than `⌈total/n_shards⌉` is first cut into contiguous subject-sorted
/// chunks that bin as independent units.
fn partition_triples(triples: &[Triple], n_shards: usize) -> Vec<Vec<Triple>> {
    if n_shards <= 1 {
        return vec![triples.to_vec()];
    }
    let mut by_pred: BTreeMap<Id, Vec<Triple>> = BTreeMap::new();
    for &t in triples {
        by_pred.entry(t.p).or_default().push(t);
    }
    let threshold = triples.len().div_ceil(n_shards).max(1);

    // (size, pred, chunk index, triples) — chunk index orders the
    // subject-range pieces of a split predicate.
    let mut units: Vec<(usize, Id, usize, Vec<Triple>)> = Vec::new();
    for (p, ts) in by_pred {
        if ts.len() <= threshold {
            units.push((ts.len(), p, 0, ts));
        } else {
            // Triples of one predicate arrive sorted by (s, o), so equal
            // chunks are contiguous subject ranges.
            let n_chunks = ts.len().div_ceil(threshold);
            let chunk = ts.len().div_ceil(n_chunks);
            for (i, c) in ts.chunks(chunk).enumerate() {
                units.push((c.len(), p, i, c.to_vec()));
            }
        }
    }
    units.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut shards: Vec<Vec<Triple>> = vec![Vec::new(); n_shards];
    let mut loads = vec![0usize; n_shards];
    for (size, _, _, ts) in units {
        let target = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .expect("n_shards >= 1")
            .0;
        loads[target] += size;
        shards[target].extend(ts);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> Graph {
        let mut triples = Vec::new();
        // Predicate 0 is hot (28 edges), 1..4 small.
        for s in 0..14u64 {
            triples.push(Triple::new(s, 0, (s + 1) % 14));
            triples.push(Triple::new(s, 0, (s + 7) % 14));
        }
        for s in 0..4u64 {
            triples.push(Triple::new(s, 1, s + 1));
            triples.push(Triple::new(s + 2, 2, s));
        }
        triples.push(Triple::new(0, 3, 13));
        Graph::from_triples(triples)
    }

    #[test]
    fn partition_is_exact_and_balanced() {
        let g = graph();
        for n_shards in [1, 2, 4, 7] {
            let parts = partition_triples(g.triples(), n_shards);
            assert_eq!(parts.len(), n_shards);
            let mut union: Vec<Triple> = parts.iter().flatten().copied().collect();
            union.sort_unstable();
            assert_eq!(
                union,
                g.triples(),
                "partition must be exact ({n_shards} shards)"
            );
            // No shard may hold more than 2× the ideal share (greedy
            // binning of threshold-bounded units guarantees this).
            let ideal = g.len().div_ceil(n_shards);
            for p in &parts {
                assert!(p.len() <= 2 * ideal, "{} > 2×{ideal}", p.len());
            }
        }
    }

    #[test]
    fn skewed_predicate_splits_by_subject_range() {
        let g = graph();
        let parts = partition_triples(g.triples(), 4);
        // Predicate 0 (28 of 37 triples) must span several shards.
        let holding = parts.iter().filter(|p| p.iter().any(|t| t.p == 0)).count();
        assert!(holding >= 2, "hot predicate stayed on {holding} shard(s)");
    }

    #[test]
    fn shards_share_global_universes() {
        let g = graph();
        let idx = ShardedIndex::build(&g, 3, RingOptions::default());
        assert_eq!(idx.n_shards(), 3);
        assert_eq!(idx.n_triples(), 2 * g.len());
        for r in idx.shards() {
            assert_eq!(r.n_nodes(), g.n_nodes());
            assert_eq!(r.n_preds_base(), g.n_preds());
            assert!(r.has_inverses());
        }
    }

    #[test]
    fn save_open_roundtrip_with_validation() {
        let dir = std::env::temp_dir().join(format!("rpq-sharded-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let g = graph();
        let idx = ShardedIndex::build(&g, 3, RingOptions::default());
        let nodes = full_dict(g.n_nodes(), "n");
        let preds = full_dict(g.n_preds(), "p");
        let bytes = idx.save_dir(&dir, &nodes, &preds).unwrap();
        assert!(bytes > 0);
        assert!(is_sharded_dir(&dir));
        assert!(!is_sharded_dir(&dir.join("nope")));

        let opened = open_dir(&dir, OpenMode::Heap).unwrap();
        assert_eq!(opened.len(), 3);
        for (got, want) in opened.iter().zip(idx.shards()) {
            assert_eq!(got.ring.n_triples(), want.n_triples());
            assert_eq!(got.nodes.len() as Id, g.n_nodes());
        }

        // A manifest/shard mismatch is rejected: drop one shard file and
        // rewrite the manifest for a single shard of the wrong size.
        write_manifest(&dir.join(MANIFEST_FILE), &idx.shards()[..1]).unwrap();
        std::fs::remove_file(dir.join(shard_file_name(0))).unwrap();
        std::fs::rename(dir.join(shard_file_name(1)), dir.join(shard_file_name(0))).unwrap();
        let err = open_dir(&dir, OpenMode::Heap).unwrap_err();
        assert!(err.to_string().contains("manifest"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = std::env::temp_dir().join(format!("rpq-sharded-bad-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let g = graph();
        let idx = ShardedIndex::build(&g, 2, RingOptions::default());
        idx.save_dir(
            &dir,
            &full_dict(g.n_nodes(), "n"),
            &full_dict(g.n_preds(), "p"),
        )
        .unwrap();
        let mpath = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&mpath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&mpath, &bytes).unwrap();
        assert!(open_dir(&dir, OpenMode::Heap).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn full_dict(n: Id, prefix: &str) -> Dict {
        let mut d = Dict::new();
        for i in 0..n {
            d.intern(&format!("{prefix}{i}"));
        }
        d
    }
}
