#![warn(missing_docs)]

//! The *ring* (Arroyuelo et al., SIGMOD 2021 \[4\]): a BWT-based succinct
//! representation of a labeled graph, and the substrate the Ring-RPQ
//! engine navigates.
//!
//! A graph is a set of triples `(s, p, o)`. Viewing each triple as a
//! circular string, the ring stores three columns (§3.4 of the RPQ paper):
//!
//! * `L_o`: objects of the triples sorted by `(s, p, o)`,
//! * `L_s`: subjects of the triples sorted by `(p, o, s)`,
//! * `L_p`: predicates of the triples sorted by `(o, s, p)`,
//!
//! each as a wavelet matrix, plus the boundary arrays `C_s`, `C_p`, `C_o`
//! counting, for every symbol, how many triples sort strictly before it in
//! the respective order. LF-steps and range backward-search steps
//! (Eqs. 3–5) move between the columns; together they answer every triple
//! pattern and power the RPQ traversal.
//!
//! Modules:
//! * [`triple`]: the `Triple` type and sort orders.
//! * [`dict`]: dictionary encoding between names and dense ids.
//! * [`graph`]: an in-memory triple set with completion `G↔` (inverse
//!   edges) and a whitespace text format.
//! * [`boundaries`]: the `C` arrays, dense (plain words) or succinct
//!   (bit vector + select), as in §5 of the paper.
//! * [`ring`]: the index itself.
//! * [`delta`]: the sorted add/tombstone overlay live updates accumulate
//!   into between ring rebuilds.
//! * [`store`]: the updatable store — ring + delta behind atomic,
//!   versioned snapshots with commit/compact.
//! * [`ltj`]: a Leapfrog-TrieJoin evaluator over rings — the worst-case
//!   optimal join the ring was originally built for, and the integration
//!   target §6 describes for mixing RPQs into multijoins.
//! * [`durable`]: crash-safe IO — atomic replace-writes, checksum
//!   footers, typed corruption errors, and the fault-injection layer the
//!   crash-consistency battery drives.
//! * [`wal`]: the write-ahead log that makes committed updates survive a
//!   crash between snapshots.
//! * [`sharded`]: horizontal sharding — the graph partitioned by
//!   predicate (subject ranges for skewed ones) into per-shard rings
//!   over shared universes, persisted as a manifest-bound directory of
//!   mapped files.

pub mod boundaries;
pub mod delta;
pub mod dict;
pub mod durable;
pub mod graph;
pub mod io;
pub mod ltj;
pub mod mapped;
pub mod ntriples;
pub mod ring;
pub mod sharded;
pub mod store;
pub mod triple;
pub mod wal;

pub use boundaries::Boundaries;
pub use delta::DeltaIndex;
pub use dict::Dict;
pub use graph::Graph;
pub use ring::Ring;
pub use store::{StoreSnapshot, TripleStore};
pub use triple::Triple;

/// Node or predicate identifier (dense, 0-based).
pub type Id = u64;
