//! The boundary arrays `C_x` of the ring.
//!
//! `C[c]` counts the triples whose relevant component is strictly smaller
//! than `c`; `[C[c], C[c+1])` is then the block of symbol `c` in the
//! corresponding column. Two representations, as in §5 of the paper: a
//! dense word array (used for the small predicate alphabet; "C_p is
//! represented as a simple array") and a succinct unary-coded bit vector
//! with select (used for the large node alphabet; "C_o is represented
//! using a plain bitvector").

use succinct::{BitVec, EliasFano, RankSelect, Slab, SpaceUsage};

use crate::Id;

/// A monotone boundary sequence over symbols `0..=universe`.
#[derive(Clone, Debug)]
pub enum Boundaries {
    /// `counts[c] = C[c]`, with `counts.len() = universe + 1`. Backed by
    /// a [`Slab`] so a mapped index file can hold the array in place.
    Dense(Slab<u64>),
    /// Unary encoding: for each symbol, a `1` followed by one `0` per
    /// occurrence; `C[c] = select1(c) - c`.
    Sparse {
        /// The unary bit vector of length `n + universe`.
        bits: RankSelect,
        /// Number of symbols (blocks).
        universe: u64,
        /// Total number of occurrences.
        n: usize,
    },
    /// Elias–Fano encoding of the cumulative counts — the most compact
    /// option for large, duplicate-heavy boundary arrays.
    EliasFano(EliasFano),
}

impl Boundaries {
    /// Builds the dense representation from per-symbol occurrence counts.
    pub fn dense_from_counts(counts_per_symbol: &[u64]) -> Self {
        let mut acc = 0u64;
        let mut c = Vec::with_capacity(counts_per_symbol.len() + 1);
        c.push(0);
        for &k in counts_per_symbol {
            acc += k;
            c.push(acc);
        }
        Boundaries::Dense(c.into())
    }

    /// Builds the Elias–Fano representation from per-symbol occurrence
    /// counts.
    pub fn elias_fano_from_counts(counts_per_symbol: &[u64]) -> Self {
        let mut acc = 0u64;
        let mut cum = Vec::with_capacity(counts_per_symbol.len() + 1);
        cum.push(0);
        for &k in counts_per_symbol {
            acc += k;
            cum.push(acc);
        }
        Boundaries::EliasFano(EliasFano::new(&cum, acc + 1))
    }

    /// Builds the succinct representation from per-symbol occurrence counts.
    pub fn sparse_from_counts(counts_per_symbol: &[u64]) -> Self {
        let n: u64 = counts_per_symbol.iter().sum();
        let mut bits = BitVec::with_capacity(n as usize + counts_per_symbol.len());
        for &k in counts_per_symbol {
            bits.push(true);
            for _ in 0..k {
                bits.push(false);
            }
        }
        Boundaries::Sparse {
            bits: RankSelect::new(bits),
            universe: counts_per_symbol.len() as u64,
            n: n as usize,
        }
    }

    /// `C[c]`: number of occurrences of symbols `< c`. Defined for
    /// `0 <= c <= universe`.
    #[inline]
    pub fn get(&self, c: Id) -> usize {
        match self {
            Boundaries::Dense(v) => v[c as usize] as usize,
            Boundaries::Sparse { bits, universe, n } => {
                if c == *universe {
                    *n
                } else {
                    bits.select1(c as usize).expect("symbol in universe") - c as usize
                }
            }
            Boundaries::EliasFano(ef) => ef.get(c as usize) as usize,
        }
    }

    /// The block `[C[c], C[c+1])` of symbol `c`.
    #[inline]
    pub fn block(&self, c: Id) -> (usize, usize) {
        (self.get(c), self.get(c + 1))
    }

    /// The symbol whose block contains position `pos` (`pos < n`).
    pub fn owner(&self, pos: usize) -> Id {
        match self {
            Boundaries::Dense(v) => (v.partition_point(|&c| c as usize <= pos) - 1) as Id,
            Boundaries::Sparse { bits, .. } => {
                let zero_pos = bits.select0(pos).expect("position within occurrences");
                (bits.rank1(zero_pos) - 1) as Id
            }
            Boundaries::EliasFano(ef) => (ef.rank_leq(pos as u64) - 1) as Id,
        }
    }

    /// Number of symbols in the universe.
    pub fn universe(&self) -> u64 {
        match self {
            Boundaries::Dense(v) => (v.len() - 1) as u64,
            Boundaries::Sparse { universe, .. } => *universe,
            Boundaries::EliasFano(ef) => (ef.len() - 1) as u64,
        }
    }

    /// Heap bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Boundaries::Dense(v) => v.heap_bytes(),
            Boundaries::Sparse { bits, .. } => bits.size_bytes(),
            Boundaries::EliasFano(ef) => ef.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(b: &Boundaries, counts: &[u64]) {
        let mut acc = 0;
        for (c, &k) in counts.iter().enumerate() {
            assert_eq!(b.get(c as Id), acc, "C[{c}]");
            let (lo, hi) = b.block(c as Id);
            assert_eq!((lo, hi), (acc, acc + k as usize), "block {c}");
            for pos in lo..hi {
                assert_eq!(b.owner(pos), c as Id, "owner of {pos}");
            }
            acc += k as usize;
        }
        assert_eq!(b.get(counts.len() as Id), acc);
        assert_eq!(b.universe(), counts.len() as u64);
    }

    #[test]
    fn dense_and_sparse_agree() {
        let counts = [4u64, 4, 2, 4, 2];
        check(&Boundaries::dense_from_counts(&counts), &counts);
        check(&Boundaries::sparse_from_counts(&counts), &counts);
        check(&Boundaries::elias_fano_from_counts(&counts), &counts);
    }

    #[test]
    fn empty_blocks() {
        let counts = [0u64, 3, 0, 0, 2, 0];
        check(&Boundaries::dense_from_counts(&counts), &counts);
        check(&Boundaries::sparse_from_counts(&counts), &counts);
        check(&Boundaries::elias_fano_from_counts(&counts), &counts);
        let b = Boundaries::sparse_from_counts(&counts);
        assert_eq!(b.block(0), (0, 0));
        assert_eq!(b.block(2), (3, 3));
        assert_eq!(b.owner(0), 1);
        assert_eq!(b.owner(3), 4);
    }

    #[test]
    fn paper_c_o_example() {
        // Fig. 3 (0-based): objects SA, UCh, LH, BA, Baq have 4, 4, 2, 4, 2
        // incoming triples; C_o = [0, 4, 8, 10, 14, 16].
        let b = Boundaries::sparse_from_counts(&[4, 4, 2, 4, 2]);
        for (c, expected) in [0, 4, 8, 10, 14, 16].into_iter().enumerate() {
            assert_eq!(b.get(c as Id), expected);
        }
        // The triple at (1-based) L_p[16] = position 15 belongs to Baq (id 4).
        assert_eq!(b.owner(15), 4);
    }
}
