//! An in-memory labeled graph: a deduplicated set of triples plus alphabet
//! sizes, with the completion `G↔ = G ∪ Ĝ` of §3.1 and a simple text
//! format for examples and fixtures.

use crate::{Dict, Id, Triple};

/// A directed edge-labeled graph over dense ids.
///
/// Nodes are `0..n_nodes`, predicates `0..n_preds`. The triple list is kept
/// sorted by `(s, p, o)` and deduplicated (RPQ evaluation is under set
/// semantics, §5).
#[derive(Clone, Debug)]
pub struct Graph {
    triples: Vec<Triple>,
    n_nodes: Id,
    n_preds: Id,
}

impl Graph {
    /// Builds a graph from `triples`; node and predicate universes are
    /// `0..n_nodes` and `0..n_preds`.
    ///
    /// # Panics
    /// Panics if a triple mentions an out-of-range id.
    pub fn new(mut triples: Vec<Triple>, n_nodes: Id, n_preds: Id) -> Self {
        for t in &triples {
            assert!(
                t.s < n_nodes && t.o < n_nodes,
                "triple {t} mentions a node >= {n_nodes}"
            );
            assert!(
                t.p < n_preds,
                "triple {t} mentions a predicate >= {n_preds}"
            );
        }
        triples.sort_unstable();
        triples.dedup();
        Self {
            triples,
            n_nodes,
            n_preds,
        }
    }

    /// Builds a graph sizing the universes from the data.
    pub fn from_triples(triples: Vec<Triple>) -> Self {
        let n_nodes = triples.iter().map(|t| t.s.max(t.o) + 1).max().unwrap_or(0);
        let n_preds = triples.iter().map(|t| t.p + 1).max().unwrap_or(0);
        Self::new(triples, n_nodes, n_preds)
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Node universe size.
    pub fn n_nodes(&self) -> Id {
        self.n_nodes
    }

    /// Predicate universe size.
    pub fn n_preds(&self) -> Id {
        self.n_preds
    }

    /// The sorted, deduplicated triples.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Whether `(s, p, o)` is an edge (binary search).
    pub fn contains(&self, s: Id, p: Id, o: Id) -> bool {
        self.triples.binary_search(&Triple::new(s, p, o)).is_ok()
    }

    /// The completion `G↔`: for every `(s, p, o)` adds `(o, p̂, s)` with
    /// `p̂ = p + n_preds`, doubling the predicate alphabet (§5: "if an edge
    /// is labeled with predicate p, its reverse edge has predicate
    /// p̂ = p + |P|").
    pub fn completed(&self) -> Graph {
        let np = self.n_preds;
        let mut all = Vec::with_capacity(self.triples.len() * 2);
        all.extend_from_slice(&self.triples);
        all.extend(self.triples.iter().map(|t| Triple::new(t.o, t.p + np, t.s)));
        Graph::new(all, self.n_nodes, np * 2)
    }

    /// Parses the whitespace text format: one `subject predicate object`
    /// line per edge; `#` starts a comment. Returns the graph plus the node
    /// and predicate dictionaries (ids in first-appearance order).
    pub fn parse_text(text: &str) -> Result<(Graph, Dict, Dict), String> {
        let mut nodes = Dict::new();
        let mut preds = Dict::new();
        let mut triples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(s), Some(p), Some(o), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "line {}: expected 'subject predicate object'",
                    lineno + 1
                ));
            };
            triples.push(Triple::new(
                nodes.intern(s),
                preds.intern(p),
                nodes.intern(o),
            ));
        }
        let g = Graph::new(triples, nodes.len() as Id, preds.len() as Id);
        Ok((g, nodes, preds))
    }

    /// Serializes to the text format using the given dictionaries.
    pub fn to_text(&self, nodes: &Dict, preds: &Dict) -> String {
        let mut out = String::new();
        for t in &self.triples {
            out.push_str(nodes.name(t.s));
            out.push(' ');
            out.push_str(preds.name(t.p));
            out.push(' ');
            out.push_str(nodes.name(t.o));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let g = Graph::from_triples(vec![
            Triple::new(1, 0, 2),
            Triple::new(0, 1, 1),
            Triple::new(1, 0, 2),
        ]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.triples()[0], Triple::new(0, 1, 1));
        assert!(g.contains(1, 0, 2));
        assert!(!g.contains(2, 0, 1));
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_preds(), 2);
    }

    #[test]
    fn completion_adds_inverses() {
        let g = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2)]);
        let c = g.completed();
        assert_eq!(c.len(), 4);
        assert_eq!(c.n_preds(), 4);
        assert!(c.contains(1, 2, 0)); // inverse of (0,0,1): p̂ = 0 + 2
        assert!(c.contains(2, 3, 1)); // inverse of (1,1,2): p̂ = 1 + 2
                                      // Completing is idempotent on the edge relation it encodes:
        assert_eq!(c.completed().len(), 8);
    }

    #[test]
    fn text_roundtrip() {
        let text = "a knows b\nb knows c # comment\n\n# full comment\nc likes a\n";
        let (g, nodes, preds) = Graph::parse_text(text).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(nodes.len(), 3);
        assert_eq!(preds.len(), 2);
        assert!(g.contains(
            nodes.get("a").unwrap(),
            preds.get("knows").unwrap(),
            nodes.get("b").unwrap()
        ));
        let text2 = g.to_text(&nodes, &preds);
        let (g2, _, _) = Graph::parse_text(&text2).unwrap();
        assert_eq!(g.triples(), g2.triples());
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(Graph::parse_text("a b").is_err());
        assert!(Graph::parse_text("a b c d").is_err());
        assert!(Graph::parse_text("").unwrap().0.is_empty());
    }
}
