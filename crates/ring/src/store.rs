//! The id-level updatable triple store: an immutable ring plus a
//! committed [`DeltaIndex`] overlay behind atomic, versioned snapshots.
//!
//! LSM-style life cycle: [`TripleStore::insert`]/[`TripleStore::delete`]
//! buffer operations; [`TripleStore::commit`] folds the buffer into a new
//! immutable delta and publishes a new [`StoreSnapshot`] under an `Arc`
//! (readers that captured the previous snapshot keep evaluating against
//! it — no torn reads); [`TripleStore::compact`] rebuilds the ring from
//! ring ⊎ delta and swaps it in. Every publication bumps the snapshot
//! **epoch**, the value caches key their entries by.
//!
//! Node and predicate ids are stable forever: compaction preserves the
//! id universes (a node keeps its id even if all its edges are deleted),
//! and new nodes extend the universe monotonically. Inserts may mention
//! predicates beyond the ring's base alphabet; since the succinct index
//! has a fixed completed alphabet, such a commit performs an immediate
//! rebuild (counted as both a commit and a compaction).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::delta::DeltaIndex;
use crate::ring::RingOptions;
use crate::{Graph, Id, Ring, Triple};

/// One buffered update operation (canonical, base-alphabet labels).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Add the triple (a no-op if it is already live).
    Insert(Triple),
    /// Remove the triple (a no-op if it is not live).
    Delete(Triple),
}

/// A consistent, immutable view of the store at one epoch. Cheap to
/// clone (four `Arc`s); queries hold one for their whole evaluation.
#[derive(Clone, Debug)]
pub struct StoreSnapshot {
    /// The base (uncompleted) graph the ring was built from.
    pub graph: Arc<Graph>,
    /// The succinct index over the completed base graph.
    pub ring: Arc<Ring>,
    /// The committed overlay (possibly empty).
    pub delta: Arc<DeltaIndex>,
    /// The snapshot version; bumped by every commit and compaction.
    pub epoch: u64,
}

impl StoreSnapshot {
    /// The evaluation node universe: ring nodes plus any delta-introduced
    /// nodes.
    pub fn n_nodes(&self) -> Id {
        self.ring.n_nodes().max(self.delta.n_nodes())
    }

    /// Whether the completed-alphabet edge `(s, p, o)` is live at this
    /// snapshot.
    pub fn contains(&self, s: Id, p: Id, o: Id) -> bool {
        if self.delta.del_contains(s, p, o) {
            return false;
        }
        self.delta.add_contains(s, p, o) || self.ring.contains(s, p, o)
    }

    /// The live canonical triples (base − deletes + adds), sorted.
    /// `O(base + delta)`; compaction and tests use this, not queries.
    pub fn live_triples(&self) -> Vec<Triple> {
        let dels: BTreeSet<&Triple> = self.delta.dels().iter().collect();
        let mut live: Vec<Triple> = self
            .graph
            .triples()
            .iter()
            .filter(|t| !dels.contains(t))
            .copied()
            .collect();
        live.extend_from_slice(self.delta.adds());
        live.sort_unstable();
        live
    }
}

/// Live update counters a serving layer exports as metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Current snapshot epoch.
    pub epoch: u64,
    /// Committed batches since construction.
    pub commits: u64,
    /// Ring rebuilds (explicit `compact`, auto-compactions, and
    /// alphabet-extending commits).
    pub compactions: u64,
    /// Added triples in the current committed delta.
    pub delta_adds: usize,
    /// Tombstoned triples in the current committed delta.
    pub delta_deletes: usize,
    /// Buffered, not-yet-committed operations.
    pub pending_ops: usize,
}

struct Inner {
    snap: Arc<StoreSnapshot>,
    pending: Vec<UpdateOp>,
}

/// The updatable database core. All methods take `&self`; mutation is
/// serialized behind an internal lock, and readers never block writers
/// longer than one `Arc` clone.
pub struct TripleStore {
    inner: RwLock<Inner>,
    /// Auto-compaction trigger: rebuild when `delta.len() ≥ ratio ·
    /// max(1, base edges)` after a commit. `None` disables.
    auto_compact_ratio: Option<f64>,
    commits: AtomicU64,
    compactions: AtomicU64,
}

impl TripleStore {
    /// Default auto-compaction ratio: rebuild once the overlay reaches
    /// half the base size.
    pub const DEFAULT_AUTO_COMPACT_RATIO: f64 = 0.5;

    /// A store over `graph` (builds the ring; epoch 0, default
    /// auto-compaction).
    pub fn new(graph: Graph) -> Self {
        let ring = Ring::build(&graph, RingOptions::default());
        Self::from_built(graph, ring, DeltaIndex::empty(0), 0)
    }

    /// Reassembles a store from persisted parts (the delta's base
    /// alphabet is aligned to the graph's).
    pub fn from_built(graph: Graph, ring: Ring, delta: DeltaIndex, epoch: u64) -> Self {
        let delta = if delta.is_empty() {
            DeltaIndex::empty(graph.n_preds())
        } else {
            delta
        };
        Self {
            inner: RwLock::new(Inner {
                snap: Arc::new(StoreSnapshot {
                    graph: Arc::new(graph),
                    ring: Arc::new(ring),
                    delta: Arc::new(delta),
                    epoch,
                }),
                pending: Vec::new(),
            }),
            auto_compact_ratio: Some(Self::DEFAULT_AUTO_COMPACT_RATIO),
            commits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Replaces the auto-compaction trigger (`None` disables it).
    pub fn with_auto_compact_ratio(mut self, ratio: Option<f64>) -> Self {
        self.auto_compact_ratio = ratio;
        self
    }

    /// The current snapshot (cheap: one `Arc` clone under a read lock).
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        Arc::clone(&self.inner.read().unwrap().snap)
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.read().unwrap().snap.epoch
    }

    /// Buffers an insert (visible after the next [`Self::commit`]).
    pub fn insert(&self, t: Triple) {
        self.inner
            .write()
            .unwrap()
            .pending
            .push(UpdateOp::Insert(t));
    }

    /// Buffers a delete (visible after the next [`Self::commit`]).
    pub fn delete(&self, t: Triple) {
        self.inner
            .write()
            .unwrap()
            .pending
            .push(UpdateOp::Delete(t));
    }

    /// Buffers a batch of operations in order.
    pub fn apply(&self, ops: impl IntoIterator<Item = UpdateOp>) {
        self.inner.write().unwrap().pending.extend(ops);
    }

    /// Buffered operations not yet committed.
    pub fn pending_ops(&self) -> usize {
        self.inner.read().unwrap().pending.len()
    }

    /// Live update counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.read().unwrap();
        StoreStats {
            epoch: inner.snap.epoch,
            commits: self.commits.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            delta_adds: inner.snap.delta.n_adds(),
            delta_deletes: inner.snap.delta.n_dels(),
            pending_ops: inner.pending.len(),
        }
    }

    /// Atomically commits the buffered operations: publishes a new
    /// snapshot whose delta reflects them, bumping the epoch. A commit
    /// with an empty buffer is a no-op. Commits that introduce new
    /// predicate labels rebuild the ring (the succinct alphabet is
    /// fixed); commits that push the overlay past the auto-compaction
    /// ratio trigger a rebuild too. Returns the resulting epoch.
    pub fn commit(&self) -> u64 {
        let mut inner = self.inner.write().unwrap();
        if inner.pending.is_empty() {
            return inner.snap.epoch;
        }
        let pending = std::mem::take(&mut inner.pending);
        let snap = Arc::clone(&inner.snap);
        let base = &*snap.graph;
        let new_preds = pending.iter().any(|op| match op {
            UpdateOp::Insert(t) => t.p >= base.n_preds(),
            UpdateOp::Delete(_) => false,
        });
        self.commits.fetch_add(1, Ordering::Relaxed);
        if new_preds {
            // The completed alphabet must grow: fold everything into a
            // fresh graph and ring in one step.
            self.rebuild_locked(&mut inner, &pending);
            self.compactions.fetch_add(1, Ordering::Relaxed);
            return inner.snap.epoch;
        }

        let mut adds: BTreeSet<Triple> = snap.delta.adds().iter().copied().collect();
        let mut dels: BTreeSet<Triple> = snap.delta.dels().iter().copied().collect();
        for op in &pending {
            match *op {
                UpdateOp::Insert(t) => {
                    // Re-inserting a tombstoned base triple revives it;
                    // inserting a base triple is a no-op.
                    if base.contains(t.s, t.p, t.o) {
                        dels.remove(&t);
                    } else {
                        adds.insert(t);
                    }
                }
                UpdateOp::Delete(t) => {
                    if base.contains(t.s, t.p, t.o) {
                        dels.insert(t);
                    } else {
                        adds.remove(&t);
                    }
                }
            }
        }
        let delta = DeltaIndex::new(
            adds.into_iter().collect(),
            dels.into_iter().collect(),
            base.n_preds(),
        );
        let overlay = delta.len();
        inner.snap = Arc::new(StoreSnapshot {
            graph: Arc::clone(&snap.graph),
            ring: Arc::clone(&snap.ring),
            delta: Arc::new(delta),
            epoch: snap.epoch + 1,
        });
        if let Some(ratio) = self.auto_compact_ratio {
            if overlay > 0 && overlay as f64 >= ratio * base.len().max(1) as f64 {
                self.compact_locked(&mut inner);
            }
        }
        inner.snap.epoch
    }

    /// Rebuilds the ring from ring ⊎ delta and swaps it in (the overlay
    /// becomes empty). Buffered, uncommitted operations are untouched.
    /// A no-op when the overlay is already empty. Returns the epoch.
    pub fn compact(&self) -> u64 {
        let mut inner = self.inner.write().unwrap();
        if inner.snap.delta.is_empty() {
            return inner.snap.epoch;
        }
        self.compact_locked(&mut inner);
        inner.snap.epoch
    }

    fn compact_locked(&self, inner: &mut Inner) {
        self.rebuild_locked(inner, &[]);
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Materializes live triples (plus `extra_ops`, applied in order) and
    /// rebuilds graph + ring, preserving the id universes.
    fn rebuild_locked(&self, inner: &mut Inner, extra_ops: &[UpdateOp]) {
        let snap = &inner.snap;
        let mut live: BTreeSet<Triple> = snap.live_triples().into_iter().collect();
        for op in extra_ops {
            match *op {
                UpdateOp::Insert(t) => {
                    live.insert(t);
                }
                UpdateOp::Delete(t) => {
                    live.remove(&t);
                }
            }
        }
        let live: Vec<Triple> = live.into_iter().collect();
        let n_nodes = live
            .iter()
            .map(|t| t.s.max(t.o) + 1)
            .max()
            .unwrap_or(0)
            .max(snap.graph.n_nodes())
            .max(snap.delta.n_nodes());
        let n_preds = live
            .iter()
            .map(|t| t.p + 1)
            .max()
            .unwrap_or(0)
            .max(snap.graph.n_preds());
        let graph = Graph::new(live, n_nodes, n_preds);
        let ring = Ring::build(&graph, RingOptions::default());
        inner.snap = Arc::new(StoreSnapshot {
            delta: Arc::new(DeltaIndex::empty(graph.n_preds())),
            graph: Arc::new(graph),
            ring: Arc::new(ring),
            epoch: snap.epoch + 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: Id, p: Id, o: Id) -> Triple {
        Triple::new(s, p, o)
    }

    fn base_store() -> TripleStore {
        // 0 -a-> 1 -a-> 2, 2 -b-> 0
        TripleStore::new(Graph::from_triples(vec![
            t(0, 0, 1),
            t(1, 0, 2),
            t(2, 1, 0),
        ]))
        .with_auto_compact_ratio(None)
    }

    #[test]
    fn commit_publishes_atomically_and_bumps_epoch() {
        let store = base_store();
        let before = store.snapshot();
        store.insert(t(2, 0, 0));
        store.delete(t(0, 0, 1));
        assert_eq!(store.pending_ops(), 2);
        // Nothing visible before commit.
        assert!(store.snapshot().contains(0, 0, 1));
        assert!(!store.snapshot().contains(2, 0, 0));
        let epoch = store.commit();
        assert_eq!(epoch, 1);
        let snap = store.snapshot();
        assert!(snap.contains(2, 0, 0));
        assert!(!snap.contains(0, 0, 1));
        // The old snapshot is untouched (readers keep a consistent view).
        assert!(before.contains(0, 0, 1));
        assert!(!before.contains(2, 0, 0));
        assert_eq!(before.epoch, 0);
        // Inverse view through the completed alphabet.
        assert!(snap.contains(0, 2, 2));
        assert!(!snap.contains(1, 2, 0));
    }

    #[test]
    fn tombstone_and_revival_cancel() {
        let store = base_store();
        store.delete(t(0, 0, 1));
        store.insert(t(0, 0, 1)); // revive within one batch
        store.insert(t(5, 1, 5));
        store.delete(t(5, 1, 5)); // cancel an uncommitted add
        store.commit();
        let snap = store.snapshot();
        assert!(snap.delta.is_empty());
        assert!(snap.contains(0, 0, 1));
        assert!(!snap.contains(5, 1, 5));
        // Across batches: delete, commit, re-insert, commit.
        store.delete(t(0, 0, 1));
        store.commit();
        assert!(!store.snapshot().contains(0, 0, 1));
        store.insert(t(0, 0, 1));
        store.commit();
        let snap = store.snapshot();
        assert!(snap.contains(0, 0, 1));
        assert!(snap.delta.is_empty());
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let store = base_store();
        assert_eq!(store.commit(), 0);
        assert_eq!(store.stats().commits, 0);
    }

    #[test]
    fn new_nodes_live_in_the_delta_until_compaction() {
        let store = base_store();
        store.insert(t(2, 1, 9));
        store.commit();
        let snap = store.snapshot();
        assert_eq!(snap.ring.n_nodes(), 3);
        assert_eq!(snap.n_nodes(), 10);
        assert!(snap.contains(2, 1, 9));
        store.compact();
        let snap = store.snapshot();
        assert!(snap.delta.is_empty());
        assert_eq!(snap.ring.n_nodes(), 10);
        assert!(snap.contains(2, 1, 9));
    }

    #[test]
    fn new_predicates_force_a_rebuild_on_commit() {
        let store = base_store();
        store.insert(t(0, 7, 2));
        let epoch = store.commit();
        assert_eq!(epoch, 1);
        let snap = store.snapshot();
        assert!(snap.delta.is_empty());
        assert_eq!(snap.graph.n_preds(), 8);
        assert!(snap.contains(0, 7, 2));
        assert!(snap.contains(0, 0, 1)); // base data survives
        let s = store.stats();
        assert_eq!((s.commits, s.compactions), (1, 1));
    }

    #[test]
    fn compaction_matches_a_clean_build_bit_for_bit() {
        use succinct::io::Persist;
        let store = base_store();
        store.delete(t(1, 0, 2));
        store.insert(t(1, 1, 1));
        store.commit();
        let live = store.snapshot().live_triples();
        store.compact();
        let snap = store.snapshot();
        let clean = Ring::build(
            &Graph::new(live, snap.graph.n_nodes(), snap.graph.n_preds()),
            RingOptions::default(),
        );
        let mut a = Vec::new();
        snap.ring.write_to(&mut a).unwrap();
        let mut b = Vec::new();
        clean.write_to(&mut b).unwrap();
        assert_eq!(a, b, "compacted ring bytes diverge from a clean build");
    }

    #[test]
    fn auto_compaction_triggers_on_the_size_ratio() {
        let store = TripleStore::new(Graph::from_triples(vec![t(0, 0, 1), t(1, 0, 2)]))
            .with_auto_compact_ratio(Some(0.5));
        store.insert(t(0, 0, 2)); // overlay 1 ≥ 0.5 · 2
        store.commit();
        let snap = store.snapshot();
        assert!(snap.delta.is_empty(), "auto-compaction should have run");
        assert_eq!(store.stats().compactions, 1);
        assert!(snap.contains(0, 0, 2));
    }

    #[test]
    fn deleting_every_edge_keeps_the_node_universe() {
        let store = base_store();
        for tr in store.snapshot().graph.triples().to_vec() {
            store.delete(tr);
        }
        store.commit();
        store.compact();
        let snap = store.snapshot();
        assert_eq!(snap.graph.len(), 0);
        assert_eq!(snap.ring.n_nodes(), 3, "ids stay valid after deletion");
    }

    #[test]
    fn store_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TripleStore>();
        assert_send_sync::<StoreSnapshot>();
    }
}
