//! Leapfrog-TrieJoin over the ring: worst-case optimal multijoins of
//! triple patterns (Veldhuizen \[50\]; Arroyuelo et al. SIGMOD'21 \[4\]).
//!
//! This is the evaluation engine the ring was originally designed for, and
//! the integration target §6 of the RPQ paper describes ("our technique is
//! particularly well-suited to integrate RPQs in SPARQL multijoin queries
//! solved with Leapfrog Triejoin"). We implement the binary-relation form:
//! every pattern has a constant predicate (the overwhelmingly common case
//! in basic graph patterns), and the completed alphabet supplies the
//! inverse direction, so any pattern can seek on either endpoint.
//!
//! Candidate values at each join level come from wavelet-matrix
//! `range_next_value` seeks over contiguous ring ranges — `O(log n)` per
//! seek, with no materialization.

use succinct::WaveletMatrix;

use crate::{Id, Ring};

/// A join term: a constant id or a query variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Term {
    /// A fixed node id.
    Const(Id),
    /// A variable, identified by index into the binding vector.
    Var(usize),
}

/// A triple pattern with a constant predicate.
#[derive(Clone, Copy, Debug)]
pub struct TriplePattern {
    /// Subject term.
    pub s: Term,
    /// Predicate (constant, in the *base* alphabet unless you know what
    /// you are doing).
    pub p: Id,
    /// Object term.
    pub o: Term,
}

impl TriplePattern {
    /// Convenience constructor.
    pub fn new(s: Term, p: Id, o: Term) -> Self {
        Self { s, p, o }
    }

    fn vars(&self) -> impl Iterator<Item = usize> {
        let a = match self.s {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        };
        let b = match self.o {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        };
        a.into_iter().chain(b)
    }
}

/// Evaluates the join of `patterns` with the given variable elimination
/// order (which must cover every variable mentioned). Returns all bindings
/// as vectors indexed by variable id.
///
/// # Panics
/// Panics if the ring lacks inverse edges (needed to seek on objects), if
/// a pattern mentions a variable missing from `var_order`, or if a
/// predicate id is out of range.
pub fn leapfrog_join(ring: &Ring, patterns: &[TriplePattern], var_order: &[usize]) -> Vec<Vec<Id>> {
    assert!(ring.has_inverses(), "leapfrog join requires inverse edges");
    let n_vars = var_order.len();
    for pat in patterns {
        assert!(pat.p < ring.n_preds(), "predicate {} out of range", pat.p);
        for v in pat.vars() {
            assert!(
                var_order.contains(&v),
                "variable {v} not in the elimination order"
            );
        }
    }
    let mut bindings: Vec<Option<Id>> =
        vec![None; n_vars.max(var_order.iter().max().map_or(0, |m| m + 1))];
    let mut results = Vec::new();

    // Constant-only patterns are a pre-filter.
    for pat in patterns {
        if let (Term::Const(s), Term::Const(o)) = (pat.s, pat.o) {
            if !ring.contains(s, pat.p, o) {
                return results;
            }
        }
    }

    recurse(ring, patterns, var_order, 0, &mut bindings, &mut results);
    results
}

fn recurse(
    ring: &Ring,
    patterns: &[TriplePattern],
    var_order: &[usize],
    depth: usize,
    bindings: &mut Vec<Option<Id>>,
    results: &mut Vec<Vec<Id>>,
) {
    if depth == var_order.len() {
        // All variables bound; re-verify self-join patterns (same variable
        // on both endpoints), which only contributed one seeker.
        for pat in patterns {
            let s = term_value(pat.s, bindings);
            let o = term_value(pat.o, bindings);
            if let (Some(s), Some(o)) = (s, o) {
                if !ring.contains(s, pat.p, o) {
                    return;
                }
            }
        }
        results.push(bindings.iter().map(|b| b.unwrap_or(0)).collect());
        return;
    }
    let var = var_order[depth];
    let seekers = build_seekers(ring, patterns, var, bindings);
    if seekers.is_empty() {
        // Unconstrained variable: every node qualifies. This only happens
        // for degenerate queries; enumerate the node universe.
        for v in 0..ring.n_nodes() {
            bindings[var] = Some(v);
            recurse(ring, patterns, var_order, depth + 1, bindings, results);
        }
        bindings[var] = None;
        return;
    }

    // Seek-based intersection (leapfrog): advance the candidate to the
    // maximum of all seekers until they agree.
    let mut candidate: Id = 0;
    'outer: loop {
        let mut agreed = true;
        for s in &seekers {
            match s.seek(candidate) {
                None => break 'outer,
                Some(v) if v > candidate => {
                    candidate = v;
                    agreed = false;
                    break;
                }
                Some(_) => {}
            }
        }
        if agreed {
            bindings[var] = Some(candidate);
            recurse(ring, patterns, var_order, depth + 1, bindings, results);
            bindings[var] = None;
            if candidate == Id::MAX {
                break;
            }
            candidate += 1;
        }
    }
}

fn term_value(t: Term, bindings: &[Option<Id>]) -> Option<Id> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => bindings[v],
    }
}

/// A sorted-distinct-value seeker over a contiguous wavelet-matrix range.
struct RangeSeeker<'a> {
    wm: &'a WaveletMatrix,
    b: usize,
    e: usize,
}

impl RangeSeeker<'_> {
    fn seek(&self, x: Id) -> Option<Id> {
        self.wm.range_next_value(self.b, self.e, x).map(|t| t.0)
    }
}

/// Builds one seeker per pattern constraining `var` under the current
/// partial binding.
fn build_seekers<'a>(
    ring: &'a Ring,
    patterns: &[TriplePattern],
    var: usize,
    bindings: &[Option<Id>],
) -> Vec<RangeSeeker<'a>> {
    let mut seekers = Vec::new();
    for pat in patterns {
        let s_val = term_value(pat.s, bindings);
        let o_val = term_value(pat.o, bindings);
        let seeks_subject = matches!(pat.s, Term::Var(v) if v == var && s_val.is_none());
        let seeks_object = matches!(pat.o, Term::Var(v) if v == var && o_val.is_none());
        if seeks_subject {
            // Values of the subject endpoint: subjects of p, optionally
            // narrowed by a bound object.
            let range = match o_val {
                Some(o) => ring.backward_step_by_pred(ring.object_range(o), pat.p),
                None => ring.pred_range(pat.p),
            };
            seekers.push(RangeSeeker {
                wm: ring.l_s(),
                b: range.0,
                e: range.1,
            });
        } else if seeks_object {
            // Mirror through the inverse predicate: objects of p are the
            // subjects of p̂.
            let pi = ring.inverse_label(pat.p);
            let range = match s_val {
                Some(s) => ring.backward_step_by_pred(ring.object_range(s), pi),
                None => ring.pred_range(pi),
            };
            seekers.push(RangeSeeker {
                wm: ring.l_s(),
                b: range.0,
                e: range.1,
            });
        }
    }
    seekers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingOptions;
    use crate::{Graph, Triple};

    /// A small social graph: knows (p=0), likes (p=1).
    fn social() -> Ring {
        let t = |s, p, o| Triple::new(s, p, o);
        let g = Graph::from_triples(vec![
            t(0, 0, 1),
            t(1, 0, 2),
            t(2, 0, 3),
            t(0, 0, 2),
            t(3, 0, 0),
            t(0, 1, 3),
            t(1, 1, 3),
            t(2, 1, 0),
        ]);
        Ring::build(&g, RingOptions::default())
    }

    fn naive_join(
        triples: &[(Id, Id, Id)],
        patterns: &[TriplePattern],
        n_vars: usize,
        n_nodes: Id,
    ) -> Vec<Vec<Id>> {
        // Brute force: try all assignments.
        let mut out = Vec::new();
        let mut assignment = vec![0 as Id; n_vars];
        fn rec(
            triples: &[(Id, Id, Id)],
            patterns: &[TriplePattern],
            assignment: &mut Vec<Id>,
            level: usize,
            n_nodes: Id,
            out: &mut Vec<Vec<Id>>,
        ) {
            if level == assignment.len() {
                let ok = patterns.iter().all(|pat| {
                    let s = match pat.s {
                        Term::Const(c) => c,
                        Term::Var(v) => assignment[v],
                    };
                    let o = match pat.o {
                        Term::Const(c) => c,
                        Term::Var(v) => assignment[v],
                    };
                    triples.contains(&(s, pat.p, o))
                });
                if ok {
                    out.push(assignment.clone());
                }
                return;
            }
            for v in 0..n_nodes {
                assignment[level] = v;
                rec(triples, patterns, assignment, level + 1, n_nodes, out);
            }
        }
        rec(triples, patterns, &mut assignment, 0, n_nodes, &mut out);
        out
    }

    #[test]
    fn two_hop_path_join() {
        let ring = social();
        // ?x knows ?y, ?y knows ?z
        let pats = [
            TriplePattern::new(Term::Var(0), 0, Term::Var(1)),
            TriplePattern::new(Term::Var(1), 0, Term::Var(2)),
        ];
        let mut got = leapfrog_join(&ring, &pats, &[0, 1, 2]);
        got.sort();
        let triples: Vec<(Id, Id, Id)> =
            vec![(0, 0, 1), (1, 0, 2), (2, 0, 3), (0, 0, 2), (3, 0, 0)];
        let mut expected = naive_join(&triples, &pats, 3, 4);
        expected.sort();
        assert_eq!(got, expected);
        assert!(got.contains(&vec![0, 1, 2]));
    }

    #[test]
    fn triangle_join() {
        let ring = social();
        // ?x knows ?y, ?y likes ?z, ?z knows ?x  — a directed triangle.
        let pats = [
            TriplePattern::new(Term::Var(0), 0, Term::Var(1)),
            TriplePattern::new(Term::Var(1), 1, Term::Var(2)),
            TriplePattern::new(Term::Var(2), 0, Term::Var(0)),
        ];
        let triples: Vec<(Id, Id, Id)> = vec![
            (0, 0, 1),
            (1, 0, 2),
            (2, 0, 3),
            (0, 0, 2),
            (3, 0, 0),
            (0, 1, 3),
            (1, 1, 3),
            (2, 1, 0),
        ];
        for order in [[0, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let mut got = leapfrog_join(&ring, &pats, &order);
            got.sort();
            let mut expected = naive_join(&triples, &pats, 3, 4);
            expected.sort();
            assert_eq!(got, expected, "order {order:?}");
        }
    }

    #[test]
    fn constants_and_self_joins() {
        let ring = social();
        // 0 knows ?y, ?y likes 3
        let pats = [
            TriplePattern::new(Term::Const(0), 0, Term::Var(0)),
            TriplePattern::new(Term::Var(0), 1, Term::Const(3)),
        ];
        let got = leapfrog_join(&ring, &pats, &[0]);
        assert_eq!(got, vec![vec![1]]);

        // Fully constant, satisfied and unsatisfied.
        let sat = [TriplePattern::new(Term::Const(0), 0, Term::Const(1))];
        assert_eq!(leapfrog_join(&ring, &sat, &[]), vec![Vec::<Id>::new()]);
        let unsat = [TriplePattern::new(Term::Const(1), 0, Term::Const(0))];
        assert!(leapfrog_join(&ring, &unsat, &[]).is_empty());

        // Self-loop pattern ?x knows ?x: none in this graph.
        let selfp = [TriplePattern::new(Term::Var(0), 0, Term::Var(0))];
        assert!(leapfrog_join(&ring, &selfp, &[0]).is_empty());
    }

    #[test]
    fn empty_intersection() {
        let ring = social();
        // ?x likes 1 — nobody likes node 1.
        let pats = [TriplePattern::new(Term::Var(0), 1, Term::Const(1))];
        assert!(leapfrog_join(&ring, &pats, &[0]).is_empty());
    }
}
