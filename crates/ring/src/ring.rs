//! The ring index: three wavelet-matrix columns plus boundary arrays,
//! supporting LF-steps, range backward search, and triple-pattern
//! enumeration (§3.4 of the paper).

use succinct::{SpaceUsage, WaveletMatrix};

use crate::{Boundaries, Graph, Id, Triple};

/// Representation of the node boundary arrays `C_s`/`C_o`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BoundaryKind {
    /// Plain cumulative word array (fastest, `(|V|+1)·8` bytes).
    Dense,
    /// Unary bit vector with select (§5 uses this for `C_o`).
    #[default]
    Sparse,
    /// Elias–Fano (most compact for large node sets).
    EliasFano,
}

/// Construction options for [`Ring::build`].
#[derive(Clone, Copy, Debug)]
pub struct RingOptions {
    /// Complete the graph with inverse edges `(o, p̂, s)`, `p̂ = p + |P|`,
    /// before indexing — required to evaluate 2RPQs (§5 "Index
    /// construction"). Doubles edges and predicates.
    pub with_inverses: bool,
    /// Representation of the node boundary arrays `C_s`/`C_o` (§5 uses a
    /// plain bitvector for `C_o`; `C_p` is always a dense array).
    pub node_boundaries: BoundaryKind,
}

impl Default for RingOptions {
    fn default() -> Self {
        Self {
            with_inverses: true,
            node_boundaries: BoundaryKind::Sparse,
        }
    }
}

/// The ring index over a (possibly completed) graph.
///
/// ```
/// use ring::{Graph, Ring, Triple};
/// use ring::ring::RingOptions;
///
/// // 0 --0--> 1 --1--> 2
/// let g = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2)]);
/// let ring = Ring::build(&g, RingOptions::default());
///
/// // Inverse edges are indexed: |G↔| = 2·|G|.
/// assert_eq!(ring.n_triples(), 4);
/// assert!(ring.contains(1, 1, 2));
/// assert!(ring.contains(2, ring.inverse_label(1), 1));
///
/// // Backward search: who reaches node 2 by label 1?
/// let mut sources = Vec::new();
/// ring.subjects_for(1, 2, &mut |s| sources.push(s));
/// assert_eq!(sources, vec![1]);
/// ```
#[derive(Clone, Debug)]
pub struct Ring {
    /// Objects in `(s, p, o)` order.
    l_o: WaveletMatrix,
    /// Subjects in `(p, o, s)` order.
    l_s: WaveletMatrix,
    /// Predicates in `(o, s, p)` order.
    l_p: WaveletMatrix,
    /// `C_s[s]` = triples with subject `< s` (partitions `L_o`).
    c_s: Boundaries,
    /// `C_p[p]` = triples with predicate `< p` (partitions `L_s`).
    c_p: Boundaries,
    /// `C_o[o]` = triples with object `< o` (partitions `L_p`).
    c_o: Boundaries,
    n: usize,
    n_nodes: Id,
    /// Completed predicate alphabet size (2·base when inverses are on).
    n_preds: Id,
    /// Base (non-inverse) predicate count.
    n_preds_base: Id,
    has_inverses: bool,
}

impl Ring {
    /// Builds the ring for `graph` with the given options.
    ///
    /// The paper constructs the BWT with a suffix array; sorting the triple
    /// list in the three circular orders yields the identical columns (see
    /// DESIGN.md §2), in `O(n log n)`.
    pub fn build(graph: &Graph, options: RingOptions) -> Self {
        let completed;
        let (g, n_preds_base) = if options.with_inverses {
            completed = graph.completed();
            (&completed, graph.n_preds())
        } else {
            (graph, graph.n_preds())
        };
        let n = g.len();
        let n_nodes = g.n_nodes().max(1);
        let n_preds = g.n_preds().max(1);

        // Three orders; Graph keeps (s,p,o) sorted already.
        let spo = g.triples();
        let mut pos: Vec<&Triple> = spo.iter().collect();
        pos.sort_unstable_by_key(|t| t.pos_key());
        let mut osp: Vec<&Triple> = spo.iter().collect();
        osp.sort_unstable_by_key(|t| t.osp_key());

        let l_o_syms: Vec<u64> = spo.iter().map(|t| t.o).collect();
        let l_s_syms: Vec<u64> = pos.iter().map(|t| t.s).collect();
        let l_p_syms: Vec<u64> = osp.iter().map(|t| t.p).collect();

        let mut subj_counts = vec![0u64; n_nodes as usize];
        let mut obj_counts = vec![0u64; n_nodes as usize];
        let mut pred_counts = vec![0u64; n_preds as usize];
        for t in spo {
            subj_counts[t.s as usize] += 1;
            obj_counts[t.o as usize] += 1;
            pred_counts[t.p as usize] += 1;
        }
        let node_bounds = |counts: &[u64]| match options.node_boundaries {
            BoundaryKind::Dense => Boundaries::dense_from_counts(counts),
            BoundaryKind::Sparse => Boundaries::sparse_from_counts(counts),
            BoundaryKind::EliasFano => Boundaries::elias_fano_from_counts(counts),
        };

        Self {
            l_o: WaveletMatrix::new(&l_o_syms, n_nodes),
            l_s: WaveletMatrix::new(&l_s_syms, n_nodes),
            l_p: WaveletMatrix::new(&l_p_syms, n_preds),
            c_s: node_bounds(&subj_counts),
            c_p: Boundaries::dense_from_counts(&pred_counts),
            c_o: node_bounds(&obj_counts),
            n,
            n_nodes,
            n_preds,
            n_preds_base,
            has_inverses: options.with_inverses,
        }
    }

    /// Number of indexed triples (after completion, if enabled).
    pub fn n_triples(&self) -> usize {
        self.n
    }

    /// Node universe size.
    pub fn n_nodes(&self) -> Id {
        self.n_nodes
    }

    /// Completed predicate alphabet size.
    pub fn n_preds(&self) -> Id {
        self.n_preds
    }

    /// Base (pre-completion) predicate count.
    pub fn n_preds_base(&self) -> Id {
        self.n_preds_base
    }

    /// Whether inverse edges are indexed.
    pub fn has_inverses(&self) -> bool {
        self.has_inverses
    }

    /// The inversion involution `p ↔ p̂` over the completed alphabet.
    ///
    /// # Panics
    /// Panics if the ring was built without inverses.
    #[inline]
    pub fn inverse_label(&self, p: Id) -> Id {
        assert!(self.has_inverses, "ring built without inverse edges");
        if p < self.n_preds_base {
            p + self.n_preds_base
        } else {
            p - self.n_preds_base
        }
    }

    /// The wavelet matrix of `L_p` (predicates in `(o, s)` order).
    pub fn l_p(&self) -> &WaveletMatrix {
        &self.l_p
    }

    /// The wavelet matrix of `L_s` (subjects in `(p, o)` order).
    pub fn l_s(&self) -> &WaveletMatrix {
        &self.l_s
    }

    /// The wavelet matrix of `L_o` (objects in `(s, p)` order).
    pub fn l_o(&self) -> &WaveletMatrix {
        &self.l_o
    }

    /// The boundary array `C_s` (for persistence).
    pub fn c_s_ref(&self) -> &Boundaries {
        &self.c_s
    }

    /// The boundary array `C_p` (for persistence).
    pub fn c_p_ref(&self) -> &Boundaries {
        &self.c_p
    }

    /// The boundary array `C_o` (for persistence).
    pub fn c_o_ref(&self) -> &Boundaries {
        &self.c_o
    }

    /// Reassembles a ring from persisted parts. Intended for
    /// [`crate::io`]; the caller is responsible for consistency (the
    /// loader validates lengths, alphabets and totals).
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        l_o: WaveletMatrix,
        l_s: WaveletMatrix,
        l_p: WaveletMatrix,
        c_s: Boundaries,
        c_p: Boundaries,
        c_o: Boundaries,
        n: usize,
        n_nodes: Id,
        n_preds: Id,
        n_preds_base: Id,
        has_inverses: bool,
    ) -> Self {
        Self {
            l_o,
            l_s,
            l_p,
            c_s,
            c_p,
            c_o,
            n,
            n_nodes,
            n_preds,
            n_preds_base,
            has_inverses,
        }
    }

    /// The block of object `o` in `L_p` — the starting range of the RPQ
    /// traversal (§4).
    #[inline]
    pub fn object_range(&self, o: Id) -> (usize, usize) {
        self.c_o.block(o)
    }

    /// The block of subject `s` in `L_o`.
    #[inline]
    pub fn subject_range(&self, s: Id) -> (usize, usize) {
        self.c_s.block(s)
    }

    /// The block of predicate `p` in `L_s`.
    #[inline]
    pub fn pred_range(&self, p: Id) -> (usize, usize) {
        self.c_p.block(p)
    }

    /// The whole of `L_p`: every triple, i.e. every object — the starting
    /// range of variable-to-variable queries (§4.4).
    #[inline]
    pub fn full_range(&self) -> (usize, usize) {
        (0, self.n)
    }

    /// The object owning position `i` of `L_p`.
    #[inline]
    pub fn object_of_lp_position(&self, i: usize) -> Id {
        self.c_o.owner(i)
    }

    /// `C_o[o]` (needed by part three of the traversal, §4.3).
    #[inline]
    pub fn c_o_get(&self, o: Id) -> usize {
        self.c_o.get(o)
    }

    /// Backward-search step by predicate (Eqs. 4–5): maps a range of `L_p`
    /// (triples grouped by object) to the range of `L_s` holding the
    /// subjects of those triples that carry predicate `p`.
    #[inline]
    pub fn backward_step_by_pred(&self, (b, e): (usize, usize), p: Id) -> (usize, usize) {
        let base = self.c_p.get(p);
        (base + self.l_p.rank(p, b), base + self.l_p.rank(p, e))
    }

    /// Batched [`Self::backward_step_by_pred`]: maps every range of
    /// `ranges` (over `L_p`) to its subject range in `L_s` in one pass,
    /// appending to `out`. All the ranges step by the *same* predicate, so
    /// the per-level node-start chain of the wavelet rank is shared across
    /// the batch ([`WaveletMatrix::rank_batch`]) — the LF-walk/backward-step
    /// helper the batched frontier expansion uses.
    pub fn backward_step_by_pred_multi(
        &self,
        ranges: &[(usize, usize)],
        p: Id,
        out: &mut Vec<(usize, usize)>,
    ) {
        let base = self.c_p.get(p);
        let mut pos: Vec<usize> = Vec::with_capacity(ranges.len() * 2);
        for &(b, e) in ranges {
            pos.push(b);
            pos.push(e);
        }
        self.l_p.rank_batch(p, &mut pos);
        out.extend(pos.chunks_exact(2).map(|c| (base + c[0], base + c[1])));
    }

    /// Batched [`Self::backward_step_by_subject`] (ranges over `L_s`,
    /// results over `L_o`), sharing the rank chain like
    /// [`Self::backward_step_by_pred_multi`].
    pub fn backward_step_by_subject_multi(
        &self,
        ranges: &[(usize, usize)],
        s: Id,
        out: &mut Vec<(usize, usize)>,
    ) {
        let base = self.c_s.get(s);
        let mut pos: Vec<usize> = Vec::with_capacity(ranges.len() * 2);
        for &(b, e) in ranges {
            pos.push(b);
            pos.push(e);
        }
        self.l_s.rank_batch(s, &mut pos);
        out.extend(pos.chunks_exact(2).map(|c| (base + c[0], base + c[1])));
    }

    /// Backward-search step by subject: maps a range of `L_s` to the range
    /// of `L_o` holding the objects of those triples with subject `s`.
    #[inline]
    pub fn backward_step_by_subject(&self, (b, e): (usize, usize), s: Id) -> (usize, usize) {
        let base = self.c_s.get(s);
        (base + self.l_s.rank(s, b), base + self.l_s.rank(s, e))
    }

    /// Backward-search step by object: maps a range of `L_o` to the range
    /// of `L_p` holding the predicates of those triples with object `o`.
    #[inline]
    pub fn backward_step_by_object(&self, (b, e): (usize, usize), o: Id) -> (usize, usize) {
        let base = self.c_o.get(o);
        (base + self.l_o.rank(o, b), base + self.l_o.rank(o, e))
    }

    /// LF-step on `L_p` (Eq. 3): position of the triple at `L_p[i]` in `L_s`.
    #[inline]
    pub fn lf_p(&self, i: usize) -> usize {
        let c = self.l_p.access(i);
        self.c_p.get(c) + self.l_p.rank(c, i)
    }

    /// LF-step on `L_s`: position of the triple at `L_s[i]` in `L_o`.
    #[inline]
    pub fn lf_s(&self, i: usize) -> usize {
        let c = self.l_s.access(i);
        self.c_s.get(c) + self.l_s.rank(c, i)
    }

    /// LF-step on `L_o`: position of the triple at `L_o[i]` in `L_p`.
    #[inline]
    pub fn lf_o(&self, i: usize) -> usize {
        let c = self.l_o.access(i);
        self.c_o.get(c) + self.l_o.rank(c, i)
    }

    /// Decodes the triple referenced by position `i` of `L_p`, walking the
    /// ring as in the §3.4 example.
    pub fn triple_at_lp(&self, i: usize) -> Triple {
        let p = self.l_p.access(i);
        let o = self.c_o.owner(i);
        let s = self.l_s.access(self.lf_p(i));
        Triple::new(s, p, o)
    }

    /// Iterates all indexed triples (by scanning `L_p`; `O(n log σ)`).
    pub fn iter_triples(&self) -> impl Iterator<Item = Triple> + '_ {
        (0..self.n).map(move |i| self.triple_at_lp(i))
    }

    /// Whether `(s, p, o)` is indexed.
    pub fn contains(&self, s: Id, p: Id, o: Id) -> bool {
        if s >= self.n_nodes || p >= self.n_preds || o >= self.n_nodes {
            return false;
        }
        let r = self.backward_step_by_subject(self.pred_range(p), s);
        self.l_o.rank(o, r.1) > self.l_o.rank(o, r.0)
    }

    /// Calls `f(s)` for each distinct subject with an edge `s --p--> o`.
    pub fn subjects_for(&self, p: Id, o: Id, f: &mut impl FnMut(Id)) {
        let r = self.backward_step_by_pred(self.object_range(o), p);
        self.l_s.range_distinct(r.0, r.1, &mut |s, _, _| f(s));
    }

    /// Calls `f(o)` for each distinct object with an edge `s --p--> o`.
    pub fn objects_for(&self, s: Id, p: Id, f: &mut impl FnMut(Id)) {
        let r = self.backward_step_by_subject(self.pred_range(p), s);
        self.l_o.range_distinct(r.0, r.1, &mut |o, _, _| f(o));
    }

    /// Number of edges labeled `p` (predicate cardinality; drives the
    /// query-planning heuristic of §5 "we choose to start from the end
    /// whose predicate has the smallest cardinality").
    #[inline]
    pub fn pred_cardinality(&self, p: Id) -> usize {
        let (b, e) = self.pred_range(p);
        e - b
    }

    /// Index heap size in bytes (Table 2 accounting).
    pub fn size_bytes(&self) -> usize {
        self.l_o.size_bytes()
            + self.l_s.size_bytes()
            + self.l_p.size_bytes()
            + self.c_s.size_bytes()
            + self.c_p.size_bytes()
            + self.c_o.size_bytes()
    }

    /// Index size excluding `L_o`, which the RPQ algorithm never reads
    /// (§4: "we use the wavelet trees representing sequences L_p and L_s,
    /// as well as all the arrays C"). Reported alongside the full ring in
    /// the space experiment.
    pub fn size_bytes_rpq_only(&self) -> usize {
        self.size_bytes() - self.l_o.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Figs. 1 and 3), 0-based:
    /// nodes SA=0, UCh=1, LH=2, BA=3, Baq=4;
    /// predicates l1=0, l2=1, l5=2, bus=3, ^bus=4.
    /// The graph is pre-completed exactly as the paper does it (metro lines
    /// bidirectional as explicit edges; only `bus` gets `^bus` inverses).
    pub(crate) fn paper_graph() -> Graph {
        const SA: Id = 0;
        const UCH: Id = 1;
        const LH: Id = 2;
        const BA: Id = 3;
        const BAQ: Id = 4;
        const L1: Id = 0;
        const L2: Id = 1;
        const L5: Id = 2;
        const BUS: Id = 3;
        const BUSI: Id = 4;
        let t = |s, p, o| Triple::new(s, p, o);
        Graph::new(
            vec![
                // l1: Baq<->UCh, UCh<->LH
                t(BAQ, L1, UCH),
                t(UCH, L1, BAQ),
                t(UCH, L1, LH),
                t(LH, L1, UCH),
                // l2: LH<->SA
                t(LH, L2, SA),
                t(SA, L2, LH),
                // l5: SA<->BA, BA<->Baq
                t(SA, L5, BA),
                t(BA, L5, SA),
                t(BA, L5, BAQ),
                t(BAQ, L5, BA),
                // bus: SA->UCh, UCh->BA, BA->SA, with explicit inverses
                t(SA, BUS, UCH),
                t(UCH, BUS, BA),
                t(BA, BUS, SA),
                t(UCH, BUSI, SA),
                t(BA, BUSI, UCH),
                t(SA, BUSI, BA),
            ],
            5,
            5,
        )
    }

    fn paper_ring() -> Ring {
        Ring::build(
            &paper_graph(),
            RingOptions {
                with_inverses: false, // the fixture is already completed
                node_boundaries: BoundaryKind::Sparse,
            },
        )
    }

    /// Fig. 3: the exact contents of the three columns (converted to
    /// 0-based ids).
    #[test]
    fn fig3_columns() {
        let r = paper_ring();
        assert_eq!(r.n_triples(), 16);
        let col = |wm: &WaveletMatrix| (0..16).map(|i| wm.access(i)).collect::<Vec<_>>();
        // L_o (objects in spo order), derived in the paper's Fig. 3 top row.
        assert_eq!(
            col(r.l_o()),
            vec![2, 3, 1, 3, 2, 4, 3, 0, 1, 0, 0, 4, 0, 1, 1, 3]
        );
        // L_s (subjects in pos order).
        assert_eq!(
            col(r.l_s()),
            vec![2, 4, 1, 1, 2, 0, 3, 0, 4, 3, 3, 0, 1, 1, 3, 0]
        );
        // L_p (predicates in osp order).
        assert_eq!(
            col(r.l_p()),
            vec![4, 1, 2, 3, 3, 0, 4, 0, 1, 0, 2, 4, 3, 2, 0, 2]
        );
    }

    /// Fig. 3's C_o and the §3.4 worked example: the triple at (1-based)
    /// L_p[16] is BA --l5--> Baq, with LF_p(16) = 10 and LF_s(10) = 12 and
    /// LF_o(12) = 16.
    #[test]
    fn fig3_lf_walk() {
        let r = paper_ring();
        // C_o = [0,4,8,10,14,16]
        for (c, expected) in [0usize, 4, 8, 10, 14, 16].into_iter().enumerate() {
            assert_eq!(r.c_o_get(c as Id), expected, "C_o[{c}]");
        }
        // 0-based: position 15 of L_p.
        assert_eq!(r.l_p().access(15), 2); // l5
        assert_eq!(r.object_of_lp_position(15), 4); // Baq
        assert_eq!(r.lf_p(15), 9); // paper: LF_p(16) = 10
        assert_eq!(r.l_s().access(9), 3); // BA
        assert_eq!(r.lf_s(9), 11); // paper: LF_s(10) = 12
        assert_eq!(r.l_o().access(11), 4); // Baq
        assert_eq!(r.lf_o(11), 15); // paper: LF_o(12) = 16 — the cycle closes
        assert_eq!(r.triple_at_lp(15), Triple::new(3, 2, 4)); // BA --l5--> Baq
    }

    /// The §3.4 backward-search example: from L_p[11..14] (object BA,
    /// 1-based) by l5 we reach L_s[8..9] = ⟨SA, Baq⟩.
    #[test]
    fn fig3_backward_search() {
        let r = paper_ring();
        let ba_range = r.object_range(3);
        assert_eq!(ba_range, (10, 14)); // 1-based [11..14]
        let l5_sources = r.backward_step_by_pred(ba_range, 2);
        assert_eq!(l5_sources, (7, 9)); // 1-based [8..9]
        assert_eq!(r.l_s().access(7), 0); // SA
        assert_eq!(r.l_s().access(8), 4); // Baq
                                          // And by ^bus we reach L_s[16..16] = ⟨SA⟩.
        let busi_sources = r.backward_step_by_pred(ba_range, 4);
        assert_eq!(busi_sources, (15, 16));
        assert_eq!(r.l_s().access(15), 0); // SA
    }

    /// Fig. 4's worked example: on the wavelet tree of `L_p`,
    /// `rank_bus(L_p, 5) = 2` (1-based) and `C_p[bus] + 2 = LF_p(5) = 12`.
    #[test]
    fn fig4_wavelet_rank_walk() {
        let r = paper_ring();
        let lp_syms: Vec<u64> = (0..16).map(|i| r.l_p().access(i)).collect();
        let wt = succinct::WaveletTree::new(&lp_syms, 5);
        // 0-based: symbol 3 = bus (paper id 4), prefix of length 5.
        assert_eq!(wt.rank(3, 5), 2);
        assert_eq!(r.l_p().rank(3, 5), 2);
        // C_p[bus] = 10 (l1:4 + l2:2 + l5:4); the tracked position is
        // LF_p(5) = 12, i.e. 0-based lf_p(4) = 11.
        assert_eq!(r.pred_range(3).0, 10);
        assert_eq!(r.l_p().access(4), 3);
        assert_eq!(r.lf_p(4), 11);
    }

    #[test]
    fn roundtrip_all_triples() {
        let g = paper_graph();
        let r = paper_ring();
        let mut decoded: Vec<Triple> = r.iter_triples().collect();
        decoded.sort_unstable();
        assert_eq!(decoded, g.triples());
        for t in g.triples() {
            assert!(r.contains(t.s, t.p, t.o), "{t}");
        }
        assert!(!r.contains(0, 0, 0));
        assert!(!r.contains(99, 0, 0));
    }

    #[test]
    fn lf_cycle_is_identity() {
        let r = paper_ring();
        for i in 0..r.n_triples() {
            let j = r.lf_p(i);
            let k = r.lf_s(j);
            assert_eq!(r.lf_o(k), i, "LF cycle from L_p position {i}");
        }
    }

    #[test]
    fn automatic_completion_inverse_labels() {
        let g = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2)]);
        let r = Ring::build(&g, RingOptions::default());
        assert_eq!(r.n_triples(), 4);
        assert_eq!(r.n_preds(), 4);
        assert_eq!(r.n_preds_base(), 2);
        assert_eq!(r.inverse_label(0), 2);
        assert_eq!(r.inverse_label(3), 1);
        assert!(r.contains(1, 2, 0));
        assert!(r.contains(2, 3, 1));
    }

    #[test]
    fn batched_backward_steps_match_single() {
        let r = paper_ring();
        let ranges: Vec<(usize, usize)> = (0..5).map(|o| r.object_range(o)).collect();
        for p in 0..5 {
            let mut batched = Vec::new();
            r.backward_step_by_pred_multi(&ranges, p, &mut batched);
            let single: Vec<(usize, usize)> = ranges
                .iter()
                .map(|&rg| r.backward_step_by_pred(rg, p))
                .collect();
            assert_eq!(batched, single, "pred {p}");
        }
        let ls_ranges: Vec<(usize, usize)> = (0..5).map(|p| r.pred_range(p)).collect();
        for s in 0..5 {
            let mut batched = Vec::new();
            r.backward_step_by_subject_multi(&ls_ranges, s, &mut batched);
            let single: Vec<(usize, usize)> = ls_ranges
                .iter()
                .map(|&rg| r.backward_step_by_subject(rg, s))
                .collect();
            assert_eq!(batched, single, "subject {s}");
        }
    }

    #[test]
    fn pattern_enumeration() {
        let r = paper_ring();
        // Subjects reaching BA (3) by l5 (2): SA (0) and Baq (4).
        let mut subs = Vec::new();
        r.subjects_for(2, 3, &mut |s| subs.push(s));
        assert_eq!(subs, vec![0, 4]);
        // Objects from UCh (1) by l1 (0): Baq (4) and LH (2).
        let mut objs = Vec::new();
        r.objects_for(1, 0, &mut |o| objs.push(o));
        assert_eq!(objs, vec![2, 4]);
        // Cardinalities: l1 has 4 edges, bus has 3.
        assert_eq!(r.pred_cardinality(0), 4);
        assert_eq!(r.pred_cardinality(3), 3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_triples(vec![]);
        let r = Ring::build(&g, RingOptions::default());
        assert_eq!(r.n_triples(), 0);
        assert_eq!(r.full_range(), (0, 0));
        assert_eq!(r.iter_triples().count(), 0);
        assert!(!r.contains(0, 0, 0));
    }

    #[test]
    fn dense_and_sparse_boundaries_agree() {
        let g = paper_graph();
        let sparse = paper_ring();
        for kind in [BoundaryKind::Dense, BoundaryKind::EliasFano] {
            let other = Ring::build(
                &g,
                RingOptions {
                    with_inverses: false,
                    node_boundaries: kind,
                },
            );
            for o in 0..=5 {
                assert_eq!(other.c_o_get(o), sparse.c_o_get(o), "{kind:?}");
            }
            for i in 0..16 {
                assert_eq!(
                    other.object_of_lp_position(i),
                    sparse.object_of_lp_position(i)
                );
                assert_eq!(other.lf_p(i), sparse.lf_p(i));
            }
        }
    }
}
