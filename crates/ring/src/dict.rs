//! Dictionary encoding between external names (IRIs, strings) and the
//! dense integer ids the ring operates on.
//!
//! The paper works on "a dictionary-encoded version of the graph" (§5);
//! string-to-id translation is orthogonal to the index (they report ~3
//! extra bytes/triple and ~3 ms/query for it). Two representations share
//! one type: the mutable heap form (a two-way map, the build path) and a
//! read-only mapped form that borrows a `RRPQM01` file — a concatenated
//! UTF-8 blob with an offset table for `id → name` and a name-sorted id
//! permutation for `name → id` by binary search, so opening a saved
//! index allocates no per-name strings at all.

use crate::Id;
use succinct::util::FxHashMap;
use succinct::Slab;

/// A two-way map between names and dense ids `0..len`.
#[derive(Clone, Debug)]
pub struct Dict {
    repr: Repr,
}

#[derive(Clone, Debug)]
enum Repr {
    Heap {
        names: Vec<String>,
        index: FxHashMap<String, Id>,
    },
    Mapped {
        /// All names concatenated in id order (validated UTF-8).
        blob: Slab<u8>,
        /// `blob[offsets[i] .. offsets[i+1]]` is name `i`; `len + 1` entries.
        offsets: Slab<u64>,
        /// Ids permuted so their names are in strictly increasing byte
        /// order — the search structure behind [`Dict::get`].
        order: Slab<u64>,
    },
}

impl Default for Dict {
    fn default() -> Self {
        Self {
            repr: Repr::Heap {
                names: Vec::new(),
                index: FxHashMap::default(),
            },
        }
    }
}

impl Dict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles the mapped, read-only representation from the arrays of
    /// a `RRPQM01` dictionary section, validating every invariant
    /// [`Dict::name`]/[`Dict::get`] later rely on: offset monotonicity
    /// and bounds, per-name UTF-8, and that `order` is a permutation
    /// sorting the names strictly (which also proves the names are
    /// distinct). O(blob) once at open, allocating only a transient
    /// presence bitmap.
    pub(crate) fn from_mapped_parts(
        blob: Slab<u8>,
        offsets: Slab<u64>,
        order: Slab<u64>,
    ) -> Result<Self, &'static str> {
        let n = order.len();
        if offsets.len() != n + 1 {
            return Err("dictionary offset table has wrong length");
        }
        if offsets[0] != 0 || offsets[n] != blob.len() as u64 {
            return Err("dictionary offsets do not span the name blob");
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return Err("dictionary offsets are not monotone");
            }
        }
        for i in 0..n {
            let bytes = &blob[offsets[i] as usize..offsets[i + 1] as usize];
            if std::str::from_utf8(bytes).is_err() {
                return Err("dictionary name is not valid UTF-8");
            }
        }
        let mut seen = vec![false; n];
        let mut prev: Option<&[u8]> = None;
        for &id in order.iter() {
            let id = id as usize;
            if id >= n || seen[id] {
                return Err("dictionary order is not a permutation of the ids");
            }
            seen[id] = true;
            let name = &blob[offsets[id] as usize..offsets[id + 1] as usize];
            if let Some(p) = prev {
                if p >= name {
                    return Err("dictionary order does not sort the names strictly");
                }
            }
            prev = Some(name);
        }
        Ok(Self {
            repr: Repr::Mapped {
                blob,
                offsets,
                order,
            },
        })
    }

    /// The mapped-form arrays `(blob, offsets, order)` of this
    /// dictionary, built fresh from the heap form if necessary — the
    /// `RRPQM01` writer.
    pub(crate) fn to_mapped_parts(&self) -> (Vec<u8>, Vec<u64>, Vec<u64>) {
        let n = self.len();
        let mut blob = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        for (_, name) in self.iter() {
            blob.extend_from_slice(name.as_bytes());
            offsets.push(blob.len() as u64);
        }
        let mut order: Vec<u64> = (0..n as u64).collect();
        order.sort_unstable_by(|&a, &b| self.name(a).cmp(self.name(b)));
        (blob, offsets, order)
    }

    /// Whether this dictionary borrows a mapped index file.
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }

    /// Rewrites a mapped dictionary into the mutable heap form (no-op on
    /// heap dictionaries). O(names); called once before mutation, e.g.
    /// when a mapped index is promoted to an updatable store.
    pub fn make_owned(&mut self) {
        if let Repr::Mapped { .. } = self.repr {
            let mut names = Vec::with_capacity(self.len());
            let mut index = FxHashMap::default();
            for (id, name) in self.iter() {
                names.push(name.to_string());
                index.insert(name.to_string(), id);
            }
            self.repr = Repr::Heap { names, index };
        }
    }

    /// Returns the id of `name`, interning it if new. A mapped
    /// dictionary is first materialized to the heap ([`Self::make_owned`]).
    pub fn intern(&mut self, name: &str) -> Id {
        self.make_owned();
        let Repr::Heap { names, index } = &mut self.repr else {
            unreachable!("make_owned leaves the heap representation");
        };
        if let Some(&id) = index.get(name) {
            return id;
        }
        let id = names.len() as Id;
        names.push(name.to_string());
        index.insert(name.to_string(), id);
        id
    }

    /// The id of `name`, if interned. O(1) on the heap form, O(log n)
    /// string comparisons on the mapped form.
    pub fn get(&self, name: &str) -> Option<Id> {
        match &self.repr {
            Repr::Heap { index, .. } => index.get(name).copied(),
            Repr::Mapped { order, .. } => {
                let k = order
                    .binary_search_by(|&id| self.name(id).as_bytes().cmp(name.as_bytes()))
                    .ok()?;
                Some(order[k])
            }
        }
    }

    /// The name of `id`.
    ///
    /// # Panics
    /// Panics if `id` was never interned.
    pub fn name(&self, id: Id) -> &str {
        match &self.repr {
            Repr::Heap { names, .. } => &names[id as usize],
            Repr::Mapped { blob, offsets, .. } => {
                let i = id as usize;
                let bytes = &blob[offsets[i] as usize..offsets[i + 1] as usize];
                // SAFETY: every name slice was UTF-8 validated in
                // `from_mapped_parts`.
                unsafe { std::str::from_utf8_unchecked(bytes) }
            }
        }
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Heap { names, .. } => names.len(),
            Repr::Mapped { order, .. } => order.len(),
        }
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &str)> {
        (0..self.len() as Id).map(move |id| (id, self.name(id)))
    }

    /// Heap bytes (strings + map on the heap form; zero payload on the
    /// mapped form, whose bytes stay in the page cache).
    pub fn size_bytes(&self) -> usize {
        match &self.repr {
            Repr::Heap { names, index } => {
                names
                    .iter()
                    .map(|n| n.capacity() + std::mem::size_of::<String>())
                    .sum::<usize>()
                    + index.capacity() * (std::mem::size_of::<String>() + std::mem::size_of::<Id>())
            }
            Repr::Mapped {
                blob,
                offsets,
                order,
            } => blob.heap_bytes() + offsets.heap_bytes() + order.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dict::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_ne!(a, b);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.name(a), "alpha");
        assert_eq!(d.get("beta"), Some(b));
        assert_eq!(d.get("gamma"), None);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dict::new();
        for (i, n) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(d.intern(n), i as Id);
        }
        let pairs: Vec<(Id, String)> = d.iter().map(|(i, n)| (i, n.to_string())).collect();
        assert_eq!(
            pairs,
            vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]
        );
    }

    #[test]
    fn mapped_parts_roundtrip_on_owned_slabs() {
        let mut d = Dict::new();
        for n in ["<zeta>", "<alpha>", "_:b0", "\"lit\"@en", "<mid>"] {
            d.intern(n);
        }
        let (blob, offsets, order) = d.to_mapped_parts();
        let m = Dict::from_mapped_parts(blob.into(), offsets.into(), order.into()).expect("valid");
        assert!(m.is_mapped());
        assert_eq!(m.len(), d.len());
        for (id, name) in d.iter() {
            assert_eq!(m.name(id), name, "name({id})");
            assert_eq!(m.get(name), Some(id), "get({name})");
        }
        assert_eq!(m.get("<nope>"), None);
        let mut owned = m.clone();
        owned.make_owned();
        assert!(!owned.is_mapped());
        assert_eq!(owned.intern("<new>"), d.len() as Id);
    }

    #[test]
    fn mapped_parts_validation_rejects_corruption() {
        let mut d = Dict::new();
        d.intern("<a>");
        d.intern("<b>");
        let (blob, offsets, order) = d.to_mapped_parts();
        // Non-permutation order.
        assert!(Dict::from_mapped_parts(
            blob.clone().into(),
            offsets.clone().into(),
            vec![0u64, 0].into()
        )
        .is_err());
        // Unsorted order.
        assert!(Dict::from_mapped_parts(
            blob.clone().into(),
            offsets.clone().into(),
            vec![1u64, 0].into()
        )
        .is_err());
        // Offsets not spanning the blob.
        let mut bad = offsets.clone();
        *bad.last_mut().unwrap() += 1;
        assert!(
            Dict::from_mapped_parts(blob.clone().into(), bad.into(), order.clone().into()).is_err()
        );
        // Invalid UTF-8 in a name.
        let mut bad_blob = blob.clone();
        bad_blob[1] = 0xFF;
        assert!(Dict::from_mapped_parts(bad_blob.into(), offsets.into(), order.into()).is_err());
    }
}
