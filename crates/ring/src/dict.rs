//! Dictionary encoding between external names (IRIs, strings) and the
//! dense integer ids the ring operates on.
//!
//! The paper works on "a dictionary-encoded version of the graph" (§5);
//! string-to-id translation is orthogonal to the index (they report ~3
//! extra bytes/triple and ~3 ms/query for it). This is a straightforward
//! two-way map.

use crate::Id;
use succinct::util::FxHashMap;

/// A two-way map between names and dense ids `0..len`.
#[derive(Clone, Debug, Default)]
pub struct Dict {
    names: Vec<String>,
    index: FxHashMap<String, Id>,
}

impl Dict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> Id {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as Id;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// The id of `name`, if interned.
    pub fn get(&self, name: &str) -> Option<Id> {
        self.index.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    /// Panics if `id` was never interned.
    pub fn name(&self, id: Id) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as Id, n.as_str()))
    }

    /// Heap bytes (strings + map).
    pub fn size_bytes(&self) -> usize {
        self.names
            .iter()
            .map(|n| n.capacity() + std::mem::size_of::<String>())
            .sum::<usize>()
            + self.index.capacity() * (std::mem::size_of::<String>() + std::mem::size_of::<Id>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dict::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_ne!(a, b);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.name(a), "alpha");
        assert_eq!(d.get("beta"), Some(b));
        assert_eq!(d.get("gamma"), None);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dict::new();
        for (i, n) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(d.intern(n), i as Id);
        }
        let pairs: Vec<(Id, String)> = d.iter().map(|(i, n)| (i, n.to_string())).collect();
        assert_eq!(
            pairs,
            vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]
        );
    }
}
