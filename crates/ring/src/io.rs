//! Binary persistence for graphs, dictionaries and the ring itself.
//!
//! The ring serializes its exact internal state (columns, boundaries,
//! alphabet metadata), so a saved index loads without re-sorting the
//! triples — the build-once/load-many workflow §5's 2.3-hour Wikidata
//! construction calls for.

use std::io::{self, Read, Write};

use succinct::io::{bad_data, read_len, read_u64, write_u64, Persist, FORMAT_VERSION};
use succinct::{RankSelect, WaveletMatrix};

use crate::{Boundaries, Dict, Graph, Ring, Triple};

const MAX_LEN: u64 = 1 << 40;

impl Persist for Boundaries {
    const MAGIC: [u8; 4] = *b"RCb1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            Boundaries::Dense(v) => {
                write_u64(w, 0)?;
                write_u64(w, v.len() as u64)?;
                for &x in v.iter() {
                    write_u64(w, x)?;
                }
                Ok(())
            }
            Boundaries::Sparse { bits, universe, n } => {
                write_u64(w, 1)?;
                write_u64(w, *universe)?;
                write_u64(w, *n as u64)?;
                bits.write_to(w)
            }
            Boundaries::EliasFano(ef) => {
                write_u64(w, 2)?;
                write_u64(w, ef.universe())?;
                write_u64(w, ef.len() as u64)?;
                for v in ef.iter() {
                    write_u64(w, v)?;
                }
                Ok(())
            }
        }
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        match read_u64(r)? {
            0 => {
                let n = read_len(r, MAX_LEN)?;
                let mut v = Vec::with_capacity(n.min(1 << 16));
                let mut prev = 0u64;
                for i in 0..n {
                    let x = read_u64(r)?;
                    if x < prev {
                        return Err(bad_data("boundary counts must be monotone"));
                    }
                    if i == 0 && x != 0 {
                        return Err(bad_data("boundaries must start at 0"));
                    }
                    prev = x;
                    v.push(x);
                }
                if v.is_empty() {
                    return Err(bad_data("empty dense boundaries"));
                }
                Ok(Boundaries::Dense(v.into()))
            }
            1 => {
                let universe = read_u64(r)?;
                let n = read_len(r, MAX_LEN)?;
                let bits = RankSelect::read_from(r)?;
                if bits.len() as u64 != universe + n as u64 {
                    return Err(bad_data("sparse boundary length mismatch"));
                }
                if bits.count_ones() as u64 != universe {
                    return Err(bad_data("sparse boundary ones-count mismatch"));
                }
                Ok(Boundaries::Sparse { bits, universe, n })
            }
            2 => {
                let universe = read_u64(r)?;
                let n = read_len(r, MAX_LEN)?;
                let mut values = Vec::with_capacity(n.min(1 << 16));
                let mut prev = 0u64;
                for i in 0..n {
                    let v = read_u64(r)?;
                    if v < prev || v >= universe {
                        return Err(bad_data("elias-fano values must be monotone and bounded"));
                    }
                    if i == 0 && v != 0 {
                        return Err(bad_data("boundaries must start at 0"));
                    }
                    prev = v;
                    values.push(v);
                }
                if values.is_empty() {
                    return Err(bad_data("empty elias-fano boundaries"));
                }
                Ok(Boundaries::EliasFano(succinct::EliasFano::new(
                    &values, universe,
                )))
            }
            t => Err(bad_data(format!("unknown boundaries tag {t}"))),
        }
    }
}

impl Persist for Graph {
    const MAGIC: [u8; 4] = *b"RGr1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64(w, self.n_nodes())?;
        write_u64(w, self.n_preds())?;
        write_u64(w, self.len() as u64)?;
        for t in self.triples() {
            write_u64(w, t.s)?;
            write_u64(w, t.p)?;
            write_u64(w, t.o)?;
        }
        Ok(())
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let n_nodes = read_u64(r)?;
        let n_preds = read_u64(r)?;
        let n = read_len(r, MAX_LEN)?;
        // Capped: a flipped length bit must not abort in the allocator.
        let mut triples = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let (s, p, o) = (read_u64(r)?, read_u64(r)?, read_u64(r)?);
            if s >= n_nodes || o >= n_nodes || p >= n_preds {
                return Err(bad_data("triple id out of universe"));
            }
            triples.push(Triple::new(s, p, o));
        }
        Ok(Graph::new(triples, n_nodes, n_preds))
    }
}

impl Persist for Dict {
    const MAGIC: [u8; 4] = *b"RDc1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64(w, self.len() as u64)?;
        for (_, name) in self.iter() {
            write_u64(w, name.len() as u64)?;
            w.write_all(name.as_bytes())?;
        }
        Ok(())
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let n = read_len(r, MAX_LEN)?;
        let mut d = Dict::new();
        for i in 0..n {
            let len = read_len(r, 1 << 24)?;
            let mut buf = vec![0u8; len];
            r.read_exact(&mut buf)?;
            let name =
                String::from_utf8(buf).map_err(|_| bad_data("dictionary name is not UTF-8"))?;
            let id = d.intern(&name);
            if id != i as u64 {
                return Err(bad_data("duplicate dictionary name"));
            }
        }
        Ok(d)
    }
}

impl Persist for Ring {
    const MAGIC: [u8; 4] = *b"RRg1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64(w, self.n_triples() as u64)?;
        write_u64(w, self.n_nodes())?;
        write_u64(w, self.n_preds())?;
        write_u64(w, self.n_preds_base())?;
        write_u64(w, self.has_inverses() as u64)?;
        self.l_o().write_to(w)?;
        self.l_s().write_to(w)?;
        self.l_p().write_to(w)?;
        self.c_s_ref().write_to(w)?;
        self.c_p_ref().write_to(w)?;
        self.c_o_ref().write_to(w)
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let n = read_len(r, MAX_LEN)?;
        let n_nodes = read_u64(r)?;
        let n_preds = read_u64(r)?;
        let n_preds_base = read_u64(r)?;
        let has_inverses = match read_u64(r)? {
            0 => false,
            1 => true,
            _ => return Err(bad_data("invalid has_inverses flag")),
        };
        // An empty ring's empty base alphabet is stored with the
        // wavelet-matrix sigma clamped to 1; with any triples present a
        // zero base alphabet is impossible, so keep the strict check.
        let doubled = n_preds_base
            .checked_mul(2)
            .ok_or_else(|| bad_data("base alphabet size overflows"))?;
        let expected_preds = if n == 0 { doubled.max(1) } else { doubled };
        if has_inverses && n_preds != expected_preds {
            return Err(bad_data("inverse alphabet size mismatch"));
        }
        let l_o = WaveletMatrix::read_from(r)?;
        let l_s = WaveletMatrix::read_from(r)?;
        let l_p = WaveletMatrix::read_from(r)?;
        let c_s = Boundaries::read_from(r)?;
        let c_p = Boundaries::read_from(r)?;
        let c_o = Boundaries::read_from(r)?;
        for (name, wm) in [("L_o", &l_o), ("L_s", &l_s), ("L_p", &l_p)] {
            if wm.len() != n {
                return Err(bad_data(format!("{name} length mismatch")));
            }
        }
        if l_o.sigma() != n_nodes.max(1)
            || l_s.sigma() != n_nodes.max(1)
            || l_p.sigma() != n_preds.max(1)
        {
            return Err(bad_data("column alphabet mismatch"));
        }
        for (name, b, uni) in [
            ("C_s", &c_s, n_nodes),
            ("C_p", &c_p, n_preds),
            ("C_o", &c_o, n_nodes),
        ] {
            if b.universe() != uni {
                return Err(bad_data(format!("{name} universe mismatch")));
            }
            if b.get(uni) != n {
                return Err(bad_data(format!("{name} total mismatch")));
            }
        }
        Ok(Ring::from_raw_parts(
            l_o,
            l_s,
            l_p,
            c_s,
            c_p,
            c_o,
            n,
            n_nodes,
            n_preds,
            n_preds_base,
            has_inverses,
        ))
    }
}

/// Writes any [`Persist`] value to a file — atomically (temp file +
/// fsync + rename) and with a whole-file checksum footer, so a crash
/// mid-save preserves the previous contents and later corruption is
/// detected on load.
pub fn save_to_file<T: Persist>(value: &T, path: &std::path::Path) -> io::Result<()> {
    crate::durable::atomic_write(path, |w| {
        let mut cw = succinct::checksum::CrcWriter::new(w);
        value.write_to(&mut cw)?;
        crate::durable::finish_footer(&mut cw)
    })
    .map(|_| ())
}

/// Reads any [`Persist`] value from a file, verifying the checksum
/// footer. Files from before the durability layer (no footer, clean EOF
/// after the payload) still load, with a warning that they carry no
/// integrity protection.
pub fn load_from_file<T: Persist>(path: &std::path::Path) -> io::Result<T> {
    let file = crate::durable::FaultReader::new(std::fs::File::open(path)?);
    let mut r = succinct::checksum::CrcReader::new(io::BufReader::new(file));
    let value = T::read_from(&mut r)?;
    let context = path.display().to_string();
    if !crate::durable::verify_footer_or_legacy(&mut r, &context)? {
        eprintln!(
            "warning: {context} predates checksums (no integrity footer); re-save to upgrade"
        );
    }
    Ok(value)
}

/// Needed by [`Persist::read_payload`] consumers that also want to assert
/// the on-disk format version.
pub const RING_FORMAT_VERSION: u32 = FORMAT_VERSION;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingOptions;

    fn roundtrip<T: Persist>(x: &T) -> T {
        let mut buf = Vec::new();
        x.write_to(&mut buf).unwrap();
        T::read_from(&mut buf.as_slice()).unwrap()
    }

    fn sample_graph() -> Graph {
        Graph::from_triples(vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 1, 2),
            Triple::new(2, 0, 0),
            Triple::new(3, 2, 1),
        ])
    }

    #[test]
    fn graph_roundtrip() {
        let g = sample_graph();
        let back = roundtrip(&g);
        assert_eq!(g.triples(), back.triples());
        assert_eq!(g.n_nodes(), back.n_nodes());
        assert_eq!(g.n_preds(), back.n_preds());
    }

    #[test]
    fn dict_roundtrip() {
        let mut d = Dict::new();
        for n in ["alpha", "βeta", "knows", ""] {
            d.intern(n);
        }
        let back = roundtrip(&d);
        assert_eq!(back.len(), 4);
        assert_eq!(back.get("βeta"), d.get("βeta"));
        assert_eq!(back.name(2), "knows");
    }

    #[test]
    fn boundaries_roundtrip() {
        for b in [
            Boundaries::dense_from_counts(&[3, 0, 2, 5]),
            Boundaries::sparse_from_counts(&[3, 0, 2, 5]),
        ] {
            let back = roundtrip(&b);
            for c in 0..=4 {
                assert_eq!(b.get(c), back.get(c), "C[{c}]");
            }
        }
    }

    #[test]
    fn ring_roundtrip_preserves_queries() {
        let g = sample_graph();
        for kind in [
            crate::ring::BoundaryKind::Dense,
            crate::ring::BoundaryKind::Sparse,
            crate::ring::BoundaryKind::EliasFano,
        ] {
            let ring = Ring::build(
                &g,
                RingOptions {
                    with_inverses: true,
                    node_boundaries: kind,
                },
            );
            let back = roundtrip(&ring);
            assert_eq!(back.n_triples(), ring.n_triples());
            assert_eq!(back.n_preds_base(), ring.n_preds_base());
            assert!(back.has_inverses());
            let all: Vec<_> = ring.iter_triples().collect();
            let all2: Vec<_> = back.iter_triples().collect();
            assert_eq!(all, all2);
            for i in 0..ring.n_triples() {
                assert_eq!(ring.lf_p(i), back.lf_p(i));
            }
        }
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("ring_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.ring");
        let g = sample_graph();
        save_to_file(&g, &path).unwrap();
        let back: Graph = load_from_file(&path).unwrap();
        assert_eq!(g.triples(), back.triples());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_helpers_detect_corruption_and_accept_legacy() {
        use crate::durable::{durability_error, DurabilityError};
        let dir = std::env::temp_dir().join(format!("ring_io_crc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.ring");
        let g = sample_graph();
        save_to_file(&g, &path).unwrap();

        // A flipped payload bit is caught by the footer checksum.
        let good = std::fs::read(&path).unwrap();
        let mut bad = good.clone();
        bad[10] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        let err = load_from_file::<Graph>(&path).expect_err("must fail");
        assert!(
            matches!(
                durability_error(&err),
                Some(DurabilityError::ChecksumMismatch { .. })
            ) || err.kind() == io::ErrorKind::InvalidData,
            "unexpected error: {err}"
        );

        // A file cut inside the footer is a typed truncation.
        std::fs::write(&path, &good[..good.len() - 7]).unwrap();
        let err = load_from_file::<Graph>(&path).expect_err("must fail");
        assert!(
            matches!(
                durability_error(&err),
                Some(DurabilityError::TruncatedFile { .. })
            ),
            "unexpected error: {err}"
        );

        // A legacy file (payload with no footer) still loads.
        let mut legacy = Vec::new();
        g.write_to(&mut legacy).unwrap();
        std::fs::write(&path, &legacy).unwrap();
        let back: Graph = load_from_file(&path).unwrap();
        assert_eq!(g.triples(), back.triples());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_ring_rejected() {
        let ring = Ring::build(&sample_graph(), RingOptions::default());
        let mut buf = Vec::new();
        ring.write_to(&mut buf).unwrap();
        // Claim a different triple count.
        buf[8] ^= 0x01;
        assert!(Ring::read_from(&mut buf.as_slice()).is_err());
        // Truncated.
        let short = &buf[..buf.len() / 2];
        assert!(Ring::read_from(&mut &short[..]).is_err());
    }
}
