//! Crash-safe snapshot IO: atomic replace-writes, checksum footers, and a
//! fault-injection layer (`IoPolicy`) for crash-consistency testing.
//!
//! Every on-disk format in the workspace routes its save path through
//! [`atomic_write`]: the new bytes go to a same-directory temp file, the
//! file is fsync'd, renamed over the destination, and the directory is
//! fsync'd so the rename itself is durable. A crash (or injected fault) at
//! any point leaves either the old file or the new file — never a torn
//! mixture — and at worst an orphaned `*.tmp` that [`cleanup_orphans`]
//! removes on the next open.
//!
//! Heap formats additionally carry a 16-byte checksum footer
//! (`[crc32c u32][covered_len u64][b"RPQF"]`, all little-endian) produced
//! by [`finish_footer`] and checked by [`verify_footer`]; corruption and
//! truncation surface as the typed [`DurabilityError`] wrapped in an
//! [`io::Error`] (downcast with [`durability_error`]).
//!
//! The fault layer is process-global and off by default: [`arm`] installs
//! an [`IoPolicy`] whose counters tick on every write/fsync/rename that
//! flows through this module, [`disarm`] removes it and reports whether
//! the fault actually fired (so test sweeps know when they have walked
//! past the last IO operation of the path under test). Once a fault
//! fires, every subsequent write/fsync/rename fails too — modelling a
//! crash, not a transient hiccup.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use succinct::checksum::{CrcReader, CrcWriter};

/// Magic closing the whole-file checksum footer of the heap formats.
pub const FOOTER_MAGIC: [u8; 4] = *b"RPQF";
/// Size of the checksum footer: crc `u32` + covered length `u64` + magic.
pub const FOOTER_LEN: usize = 16;

// ---------------------------------------------------------------------------
// Typed durability errors
// ---------------------------------------------------------------------------

/// A typed durability failure detected while opening an index.
///
/// Carried as the source of an [`io::Error`] with kind
/// [`io::ErrorKind::InvalidData`]; recover it with [`durability_error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// Stored and recomputed checksums disagree: the bytes were altered
    /// after they were written (bit rot, torn overwrite, tampering).
    ChecksumMismatch {
        /// What was being checked (file or section name).
        context: String,
        /// The checksum recorded on disk.
        expected: u32,
        /// The checksum recomputed from the bytes actually read.
        actual: u32,
    },
    /// The file ends before the format says it should (interrupted write
    /// on a pre-atomic layout, or external truncation).
    TruncatedFile {
        /// What was being read when the bytes ran out.
        context: String,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::ChecksumMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {context}: stored {expected:#010x}, computed {actual:#010x}"
            ),
            DurabilityError::TruncatedFile { context } => {
                write!(f, "truncated file: {context}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

/// Builds the [`io::Error`] carrying a [`DurabilityError::ChecksumMismatch`].
pub fn checksum_error(context: impl Into<String>, expected: u32, actual: u32) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        DurabilityError::ChecksumMismatch {
            context: context.into(),
            expected,
            actual,
        },
    )
}

/// Builds the [`io::Error`] carrying a [`DurabilityError::TruncatedFile`].
pub fn truncated_error(context: impl Into<String>) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        DurabilityError::TruncatedFile {
            context: context.into(),
        },
    )
}

/// Recovers the typed [`DurabilityError`] from an [`io::Error`], if that is
/// what it carries.
pub fn durability_error(err: &io::Error) -> Option<&DurabilityError> {
    err.get_ref()?.downcast_ref::<DurabilityError>()
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A fault-injection policy: which IO operation (counted per category,
/// 0-based, across everything routed through this module while armed)
/// should misbehave, and how.
///
/// All fields default to `None` (no fault). Once any write/fsync/rename
/// fault fires, the armed state turns *dead* and every later write, fsync
/// and rename fails as well — a crashed process does not come back to
/// finish the save. `flip_read` is independent: it corrupts one bit of
/// one byte (by absolute offset within the stream) on the read path and
/// does not kill anything, modelling silent media corruption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoPolicy {
    /// Fail the Nth write with an injected error (no bytes written).
    pub fail_write: Option<u64>,
    /// Tear the Nth write: half its bytes reach the file, then it fails.
    pub short_write: Option<u64>,
    /// Fail the Nth fsync (file or directory).
    pub fail_fsync: Option<u64>,
    /// Fail the Nth rename.
    pub fail_rename: Option<u64>,
    /// Flip bit `1 << (b & 7)` of the byte at stream offset `off` on read.
    pub flip_read: Option<(u64, u8)>,
}

impl IoPolicy {
    /// Parses a policy from the `RPQ_IO_FAULTS` environment variable.
    ///
    /// Comma-separated specs: `write:N`, `short:N`, `fsync:N`,
    /// `rename:N`, `flip:OFFSET.BIT`. Returns `None` when the variable is
    /// unset or empty; malformed specs are an error so CI typos fail
    /// loudly instead of silently testing nothing.
    pub fn from_env() -> io::Result<Option<IoPolicy>> {
        let Ok(raw) = std::env::var("RPQ_IO_FAULTS") else {
            return Ok(None);
        };
        if raw.trim().is_empty() {
            return Ok(None);
        }
        let mut policy = IoPolicy::default();
        for spec in raw.split(',') {
            let spec = spec.trim();
            let bad = || {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("RPQ_IO_FAULTS: malformed spec `{spec}`"),
                )
            };
            let (kind, arg) = spec.split_once(':').ok_or_else(bad)?;
            match kind {
                "write" => policy.fail_write = Some(arg.parse().map_err(|_| bad())?),
                "short" => policy.short_write = Some(arg.parse().map_err(|_| bad())?),
                "fsync" => policy.fail_fsync = Some(arg.parse().map_err(|_| bad())?),
                "rename" => policy.fail_rename = Some(arg.parse().map_err(|_| bad())?),
                "flip" => {
                    let (off, bit) = arg.split_once('.').ok_or_else(bad)?;
                    policy.flip_read = Some((
                        off.parse().map_err(|_| bad())?,
                        bit.parse().map_err(|_| bad())?,
                    ));
                }
                _ => return Err(bad()),
            }
        }
        Ok(Some(policy))
    }
}

struct ArmedPolicy {
    policy: IoPolicy,
    writes: u64,
    fsyncs: u64,
    renames: u64,
    triggered: bool,
    dead: bool,
}

static ARMED: Mutex<Option<ArmedPolicy>> = Mutex::new(None);

/// Installs `policy` process-wide. Tests arming faults must serialize on
/// their own mutex — the policy is global state.
pub fn arm(policy: IoPolicy) {
    *ARMED.lock().unwrap() = Some(ArmedPolicy {
        policy,
        writes: 0,
        fsyncs: 0,
        renames: 0,
        triggered: false,
        dead: false,
    });
}

/// Removes the armed policy; returns whether any fault fired while armed.
/// Sweeps use the `false` return to detect that the fault index walked
/// past the last IO operation of the path under test.
pub fn disarm() -> bool {
    ARMED
        .lock()
        .unwrap()
        .take()
        .map(|st| st.triggered)
        .unwrap_or(false)
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// Whether `err` is an error produced by the fault-injection layer.
pub fn is_injected(err: &io::Error) -> bool {
    err.to_string().starts_with("injected fault:")
}

enum WriteFault {
    None,
    Short,
}

fn hook_write() -> io::Result<WriteFault> {
    let mut guard = ARMED.lock().unwrap();
    let Some(st) = guard.as_mut() else {
        return Ok(WriteFault::None);
    };
    if st.dead {
        return Err(injected("write after crash"));
    }
    let n = st.writes;
    st.writes += 1;
    if st.policy.fail_write == Some(n) {
        st.triggered = true;
        st.dead = true;
        return Err(injected(format!("write #{n}").as_str()));
    }
    if st.policy.short_write == Some(n) {
        st.triggered = true;
        st.dead = true;
        return Ok(WriteFault::Short);
    }
    Ok(WriteFault::None)
}

fn hook_fsync() -> io::Result<()> {
    let mut guard = ARMED.lock().unwrap();
    let Some(st) = guard.as_mut() else {
        return Ok(());
    };
    if st.dead {
        return Err(injected("fsync after crash"));
    }
    let n = st.fsyncs;
    st.fsyncs += 1;
    if st.policy.fail_fsync == Some(n) {
        st.triggered = true;
        st.dead = true;
        return Err(injected(format!("fsync #{n}").as_str()));
    }
    Ok(())
}

fn hook_rename() -> io::Result<()> {
    let mut guard = ARMED.lock().unwrap();
    let Some(st) = guard.as_mut() else {
        return Ok(());
    };
    if st.dead {
        return Err(injected("rename after crash"));
    }
    let n = st.renames;
    st.renames += 1;
    if st.policy.fail_rename == Some(n) {
        st.triggered = true;
        st.dead = true;
        return Err(injected(format!("rename #{n}").as_str()));
    }
    Ok(())
}

fn hook_read(offset: u64, buf: &mut [u8], n: usize) {
    let mut guard = ARMED.lock().unwrap();
    let Some(st) = guard.as_mut() else { return };
    if let Some((off, bit)) = st.policy.flip_read {
        if off >= offset && off < offset + n as u64 {
            buf[(off - offset) as usize] ^= 1 << (bit & 7);
            st.triggered = true;
        }
    }
}

/// A writer that consults the armed [`IoPolicy`] on every `write`.
///
/// Save paths stack a `BufWriter` *on top* of this, so each counted write
/// is one buffer flush (~tens of KB) — keeping fault sweeps over "fail
/// the Nth write" to a handful of iterations per save instead of one per
/// field.
pub struct FaultWriter<W> {
    inner: W,
}

impl<W: Write> FaultWriter<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }
}

impl FaultWriter<File> {
    /// Fsyncs the underlying file, subject to the armed fsync fault.
    pub fn sync_all(&self) -> io::Result<()> {
        hook_fsync()?;
        self.inner.sync_all()
    }

    /// Positions the underlying file at absolute offset `pos` (the WAL
    /// uses this to resume appending after recovery).
    pub fn seek_end(&mut self, pos: u64) -> io::Result<()> {
        use std::io::Seek;
        self.inner.seek(io::SeekFrom::Start(pos)).map(|_| ())
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match hook_write()? {
            WriteFault::None => self.inner.write(buf),
            WriteFault::Short => {
                // A torn write: half the bytes land, then the "crash".
                let torn = buf.len() / 2;
                self.inner.write_all(&buf[..torn])?;
                let _ = self.inner.flush();
                Err(injected("short write"))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that applies the armed bit-flip fault by absolute stream
/// offset, modelling silent media corruption on the load path.
pub struct FaultReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> FaultReader<R> {
    /// Wraps `inner`, counting offsets from zero.
    pub fn new(inner: R) -> Self {
        Self { inner, offset: 0 }
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        hook_read(self.offset, buf, n);
        self.offset += n as u64;
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Atomic replace-write
// ---------------------------------------------------------------------------

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_path_for(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "index".to_string());
    let unique = format!(
        "{name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    path.with_file_name(unique)
}

/// Atomically replaces `path` with the bytes `write` produces.
///
/// The payload goes to a unique same-directory temp file through a
/// buffered, fault-aware writer; the temp file is fsync'd, renamed over
/// `path`, and the parent directory fsync'd so the rename survives a
/// crash. On any error the temp file is removed and the previous contents
/// of `path` are untouched. Returns the number of payload bytes written.
pub fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<u64> {
    let tmp = temp_path_for(path);
    let result = (|| {
        let file = File::create(&tmp)?;
        let mut writer = BufWriter::with_capacity(64 << 10, FaultWriter::new(file));
        write(&mut writer)?;
        writer.flush()?;
        let fault_file = writer
            .into_inner()
            .map_err(|e| io::Error::other(format!("flush on save: {e}")))?;
        fault_file.sync_all()?;
        drop(fault_file);
        hook_rename()?;
        fs::rename(&tmp, path)?;
        // Make the rename itself durable: fsync the containing directory.
        fsync_parent_dir(path)?;
        Ok(())
    })();
    match result {
        Ok(()) => {
            let len = fs::metadata(path)?.len();
            Ok(len)
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Fsyncs the directory containing `path`, making a rename or file
/// creation inside it durable. Subject to the armed fsync fault.
pub fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    let Some(dir) = path.parent() else {
        return Ok(());
    };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    hook_fsync()?;
    File::open(dir)?.sync_all()
}

/// Best-effort removal of orphaned `*.tmp` files a crashed save left next
/// to `path` (any sibling named `<file_name>.<...>.tmp`). Returns how many
/// were removed; never fails — an unreadable directory just cleans nothing.
pub fn cleanup_orphans(path: &Path) -> usize {
    let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return 0;
    };
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Ok(entries) = fs::read_dir(&dir) else {
        return 0;
    };
    let prefix = format!("{name}.");
    let mut removed = 0;
    for entry in entries.flatten() {
        let file = entry.file_name().to_string_lossy().into_owned();
        if file.starts_with(&prefix)
            && file.ends_with(".tmp")
            && fs::remove_file(entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    removed
}

// ---------------------------------------------------------------------------
// Checksum footer
// ---------------------------------------------------------------------------

/// Appends the 16-byte checksum footer covering everything written
/// through `w` so far. The footer bytes themselves are not hashed.
pub fn finish_footer<W: Write>(w: &mut CrcWriter<W>) -> io::Result<()> {
    let crc = w.digest();
    let covered = w.written();
    let inner = w.inner_mut();
    inner.write_all(&crc.to_le_bytes())?;
    inner.write_all(&covered.to_le_bytes())?;
    inner.write_all(&FOOTER_MAGIC)
}

/// Reads and checks the checksum footer after the payload has been fully
/// consumed through `r`. Verifies the footer magic, the covered length,
/// the CRC32C, and that nothing trails the footer. Errors are the typed
/// [`DurabilityError`] variants.
pub fn verify_footer<R: Read>(r: &mut CrcReader<R>, context: &str) -> io::Result<()> {
    if read_footer(r, context)? {
        Ok(())
    } else {
        Err(truncated_error(format!(
            "{context}: missing checksum footer"
        )))
    }
}

/// Like [`verify_footer`], but a clean EOF right after the payload is
/// accepted as a legacy pre-checksum file. Returns whether a footer was
/// present (and verified); `false` means the caller should warn that the
/// file has no integrity protection.
pub fn verify_footer_or_legacy<R: Read>(r: &mut CrcReader<R>, context: &str) -> io::Result<bool> {
    read_footer(r, context)
}

fn read_footer<R: Read>(r: &mut CrcReader<R>, context: &str) -> io::Result<bool> {
    let actual = r.digest();
    let covered = r.read_count();
    let mut footer = [0u8; FOOTER_LEN];
    let mut got = 0usize;
    while got < FOOTER_LEN {
        let n = r.inner_mut().read(&mut footer[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    if got == 0 {
        return Ok(false);
    }
    if got < FOOTER_LEN {
        return Err(truncated_error(format!(
            "{context}: checksum footer cut off"
        )));
    }
    if footer[12..16] != FOOTER_MAGIC {
        return Err(truncated_error(format!(
            "{context}: checksum footer magic missing (file cut or overwritten mid-save)"
        )));
    }
    let expected = u32::from_le_bytes(footer[0..4].try_into().unwrap());
    let stored_len = u64::from_le_bytes(footer[4..12].try_into().unwrap());
    if stored_len != covered {
        return Err(truncated_error(format!(
            "{context}: footer covers {stored_len} bytes but {covered} were read"
        )));
    }
    if expected != actual {
        return Err(checksum_error(context, expected, actual));
    }
    let mut trailing = [0u8; 1];
    if r.inner_mut().read(&mut trailing)? != 0 {
        return Err(truncated_error(format!(
            "{context}: trailing bytes after checksum footer"
        )));
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // Fault arming is process-global; serialize the tests that use it.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());
    fn lock_faults() -> MutexGuard<'static, ()> {
        FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rpq-durable-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_reports_len() {
        let dir = tmpdir("replace");
        let path = dir.join("data.bin");
        fs::write(&path, b"old contents").unwrap();
        let len = atomic_write(&path, |w| w.write_all(b"new")).unwrap();
        assert_eq!(len, 3);
        assert_eq!(fs::read(&path).unwrap(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_atomic_write_preserves_old_bytes() {
        let dir = tmpdir("preserve");
        let path = dir.join("data.bin");
        fs::write(&path, b"old contents").unwrap();
        let err = atomic_write(&path, |w| {
            w.write_all(b"half the new bytes")?;
            Err(io::Error::other("simulated failure"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "simulated failure");
        assert_eq!(fs::read(&path).unwrap(), b"old contents");
        // No temp litter left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_fault_fires_and_preserves_target() {
        let _guard = lock_faults();
        let dir = tmpdir("fault");
        let path = dir.join("data.bin");
        fs::write(&path, b"old").unwrap();
        arm(IoPolicy {
            fail_write: Some(0),
            ..IoPolicy::default()
        });
        let err = atomic_write(&path, |w| w.write_all(&[7u8; 256 << 10])).unwrap_err();
        assert!(disarm());
        assert!(is_injected(&err), "unexpected error: {err}");
        assert_eq!(fs::read(&path).unwrap(), b"old");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disarm_reports_untriggered_fault() {
        let _guard = lock_faults();
        let dir = tmpdir("untriggered");
        let path = dir.join("data.bin");
        arm(IoPolicy {
            fail_write: Some(1000),
            ..IoPolicy::default()
        });
        atomic_write(&path, |w| w.write_all(b"tiny")).unwrap();
        assert!(!disarm(), "fault #1000 cannot fire on a one-flush save");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn footer_roundtrip_and_corruption_detection() {
        let payload = b"some payload bytes for the footer";
        let mut w = CrcWriter::new(Vec::new());
        w.write_all(payload).unwrap();
        finish_footer(&mut w).unwrap();
        let bytes = std::mem::take(w.inner_mut());
        assert_eq!(bytes.len(), payload.len() + FOOTER_LEN);

        // Clean verify.
        let mut r = CrcReader::new(&bytes[..]);
        let mut buf = vec![0u8; payload.len()];
        r.read_exact(&mut buf).unwrap();
        verify_footer(&mut r, "test").unwrap();

        // Flip one payload bit: ChecksumMismatch.
        let mut bad = bytes.clone();
        bad[5] ^= 0x10;
        let mut r = CrcReader::new(&bad[..]);
        r.read_exact(&mut buf).unwrap();
        let err = verify_footer(&mut r, "test").unwrap_err();
        assert!(matches!(
            durability_error(&err),
            Some(DurabilityError::ChecksumMismatch { .. })
        ));

        // Cut the footer short: TruncatedFile.
        let cut = &bytes[..bytes.len() - 4];
        let mut r = CrcReader::new(cut);
        r.read_exact(&mut buf).unwrap();
        let err = verify_footer(&mut r, "test").unwrap_err();
        assert!(matches!(
            durability_error(&err),
            Some(DurabilityError::TruncatedFile { .. })
        ));

        // Trailing garbage after the footer is rejected too.
        let mut long = bytes.clone();
        long.push(0xAB);
        let mut r = CrcReader::new(&long[..]);
        r.read_exact(&mut buf).unwrap();
        assert!(verify_footer(&mut r, "test").is_err());
    }

    #[test]
    fn flip_read_corrupts_exactly_one_bit() {
        let _guard = lock_faults();
        let data: Vec<u8> = (0..64u8).collect();
        arm(IoPolicy {
            flip_read: Some((10, 3)),
            ..IoPolicy::default()
        });
        let mut r = FaultReader::new(&data[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert!(disarm());
        assert_eq!(out[10], 10 ^ (1 << 3));
        out[10] = 10;
        assert_eq!(out, data);
    }

    #[test]
    fn cleanup_removes_only_matching_orphans() {
        let dir = tmpdir("cleanup");
        let path = dir.join("index.ring");
        fs::write(&path, b"good").unwrap();
        fs::write(dir.join("index.ring.123.0.tmp"), b"orphan").unwrap();
        fs::write(dir.join("index.ring.999.7.tmp"), b"orphan").unwrap();
        fs::write(dir.join("other.ring.5.5.tmp"), b"keep").unwrap();
        assert_eq!(cleanup_orphans(&path), 2);
        assert!(path.exists());
        assert!(dir.join("other.ring.5.5.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn env_policy_parsing() {
        // from_env reads the live environment; only exercise the parser
        // indirectly through a scoped set/remove. Serialized by the fault
        // lock since env vars are process-global too.
        let _guard = lock_faults();
        std::env::set_var("RPQ_IO_FAULTS", "write:3,flip:128.5");
        let policy = IoPolicy::from_env().unwrap().unwrap();
        assert_eq!(policy.fail_write, Some(3));
        assert_eq!(policy.flip_read, Some((128, 5)));
        std::env::set_var("RPQ_IO_FAULTS", "bogus:1");
        assert!(IoPolicy::from_env().is_err());
        std::env::remove_var("RPQ_IO_FAULTS");
        assert!(IoPolicy::from_env().unwrap().is_none());
    }
}
