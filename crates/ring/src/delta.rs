//! The mutable overlay on top of the immutable ring: a committed,
//! immutable batch of **added** triples and **tombstoned** (deleted)
//! triples, kept in the same three circular sort orders the ring itself
//! uses (`spo`, `pos`, `osp`) so every backward-search-shaped lookup the
//! RPQ engine performs has a cheap, binary-searchable delta counterpart.
//!
//! A [`DeltaIndex`] stores *canonical* triples only (predicate ids below
//! the base alphabet, no inverse completion); every accessor takes
//! labels from the **completed** alphabet `Σ↔` and canonicalizes
//! internally (`(s, p̂, o)` is the edge `(o, p, s)`), exactly mirroring
//! how [`crate::Ring`] indexes the completed graph.
//!
//! Invariants (maintained by [`crate::store::TripleStore`], not enforced
//! here beyond debug assertions): adds and deletes are disjoint, deletes
//! refer to triples present in the base ring, and adds to triples absent
//! from it.

use std::io::{self, Read, Write};

use succinct::io::{bad_data, read_len, read_u64, write_u64, Persist};

use crate::{Id, Triple};

/// Sanity cap on serialized delta sizes (matches the succinct codec).
const MAX_LEN: u64 = 1 << 40;

/// An immutable, committed delta: sorted adds plus tombstoned deletes in
/// the three ring orders. See the module docs for the label-space
/// convention.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaIndex {
    /// Added triples, `(s, p, o)` order — the authoritative copy.
    adds_spo: Vec<Triple>,
    /// Added triples, `(p, o, s)` order (the `L_s` order: backward steps
    /// by predicate land here).
    adds_pos: Vec<Triple>,
    /// Added triples, `(o, s, p)` order (the `L_p` order: per-object
    /// incidence).
    adds_osp: Vec<Triple>,
    /// Deleted triples, `(s, p, o)` order.
    dels_spo: Vec<Triple>,
    /// Deleted triples, `(p, o, s)` order.
    dels_pos: Vec<Triple>,
    /// Deleted triples, `(o, s, p)` order.
    dels_osp: Vec<Triple>,
    /// Base (pre-completion) predicate alphabet size; canonical triples
    /// satisfy `p < n_preds_base`.
    n_preds_base: Id,
    /// One past the largest node id mentioned by the delta (0 if empty).
    n_nodes: Id,
}

/// Sorts a triple list by the given key and deduplicates it.
fn order_by(mut v: Vec<Triple>, key: fn(&Triple) -> (Id, Id, Id)) -> Vec<Triple> {
    v.sort_unstable_by_key(key);
    v.dedup();
    v
}

/// The contiguous block of `v` (sorted by `key`) whose key starts with
/// `(a, b)`.
fn block2(v: &[Triple], key: fn(&Triple) -> (Id, Id, Id), a: Id, b: Id) -> &[Triple] {
    let lo = v.partition_point(|t| key(t) < (a, b, 0));
    let hi = v[lo..].partition_point(|t| {
        let k = key(t);
        (k.0, k.1) <= (a, b)
    }) + lo;
    &v[lo..hi]
}

/// The contiguous block of `v` (sorted by `key`) whose key starts with `a`.
fn block1(v: &[Triple], key: fn(&Triple) -> (Id, Id, Id), a: Id) -> &[Triple] {
    let lo = v.partition_point(|t| key(t).0 < a);
    let hi = v[lo..].partition_point(|t| key(t).0 <= a) + lo;
    &v[lo..hi]
}

impl DeltaIndex {
    /// An empty delta over the given base alphabet.
    pub fn empty(n_preds_base: Id) -> Self {
        Self {
            n_preds_base,
            ..Self::default()
        }
    }

    /// Builds a delta from canonical add/delete triple lists (sorted and
    /// deduplicated here; every predicate must be `< n_preds_base`).
    ///
    /// # Panics
    /// Panics if a triple mentions a predicate at or beyond the base
    /// alphabet — deltas never extend the ring's label space (a commit
    /// introducing new predicates rebuilds the ring instead).
    pub fn new(adds: Vec<Triple>, dels: Vec<Triple>, n_preds_base: Id) -> Self {
        for t in adds.iter().chain(dels.iter()) {
            assert!(
                t.p < n_preds_base,
                "delta triple {t} outside the base alphabet ({n_preds_base})"
            );
        }
        let n_nodes = adds
            .iter()
            .chain(dels.iter())
            .map(|t| t.s.max(t.o) + 1)
            .max()
            .unwrap_or(0);
        Self {
            adds_pos: order_by(adds.clone(), Triple::pos_key),
            adds_osp: order_by(adds.clone(), Triple::osp_key),
            adds_spo: order_by(adds, Triple::spo_key),
            dels_pos: order_by(dels.clone(), Triple::pos_key),
            dels_osp: order_by(dels.clone(), Triple::osp_key),
            dels_spo: order_by(dels, Triple::spo_key),
            n_preds_base,
            n_nodes,
        }
    }

    /// Whether the delta holds no adds and no deletes.
    pub fn is_empty(&self) -> bool {
        self.adds_spo.is_empty() && self.dels_spo.is_empty()
    }

    /// Number of added triples.
    pub fn n_adds(&self) -> usize {
        self.adds_spo.len()
    }

    /// Number of tombstoned triples.
    pub fn n_dels(&self) -> usize {
        self.dels_spo.len()
    }

    /// Total overlay size (adds + deletes) — the quantity the size-ratio
    /// compaction trigger compares against the base.
    pub fn len(&self) -> usize {
        self.n_adds() + self.n_dels()
    }

    /// Base (pre-completion) predicate alphabet size.
    pub fn n_preds_base(&self) -> Id {
        self.n_preds_base
    }

    /// One past the largest node id the delta mentions (0 when empty).
    /// Adds may introduce nodes beyond the ring's universe; the merged
    /// evaluation universe is the max of both.
    pub fn n_nodes(&self) -> Id {
        self.n_nodes
    }

    /// The added triples in `(s, p, o)` order (canonical labels).
    pub fn adds(&self) -> &[Triple] {
        &self.adds_spo
    }

    /// The tombstoned triples in `(s, p, o)` order (canonical labels).
    pub fn dels(&self) -> &[Triple] {
        &self.dels_spo
    }

    /// Canonicalizes a completed-alphabet edge: `(s, p̂, o)` is stored as
    /// `(o, p, s)`.
    #[inline]
    fn canon(&self, s: Id, p: Id, o: Id) -> Triple {
        if p < self.n_preds_base {
            Triple::new(s, p, o)
        } else {
            Triple::new(o, p - self.n_preds_base, s)
        }
    }

    /// Whether the completed-alphabet edge `(s, p, o)` was added.
    pub fn add_contains(&self, s: Id, p: Id, o: Id) -> bool {
        self.adds_spo.binary_search(&self.canon(s, p, o)).is_ok()
    }

    /// Whether the completed-alphabet edge `(s, p, o)` is tombstoned.
    pub fn del_contains(&self, s: Id, p: Id, o: Id) -> bool {
        self.dels_spo.binary_search(&self.canon(s, p, o)).is_ok()
    }

    /// Pushes the subjects of added completed-alphabet edges `(s, p, o)`
    /// into `out`, in ascending order without duplicates — the delta
    /// counterpart of one ring backward step by predicate.
    pub fn added_into(&self, o: Id, p: Id, out: &mut Vec<Id>) {
        Self::into_side(&self.adds_pos, &self.adds_spo, self.n_preds_base, o, p, out);
    }

    /// Like [`Self::added_into`], over the tombstones.
    pub fn deleted_into(&self, o: Id, p: Id, out: &mut Vec<Id>) {
        Self::into_side(&self.dels_pos, &self.dels_spo, self.n_preds_base, o, p, out);
    }

    fn into_side(pos: &[Triple], spo: &[Triple], base: Id, o: Id, p: Id, out: &mut Vec<Id>) {
        if p < base {
            // Canonical `(·, p, o)`: a `(p, o)` block of the pos order,
            // subjects ascending (each triple is distinct, so subjects
            // within one block are too).
            out.extend(block2(pos, Triple::pos_key, p, o).iter().map(|t| t.s));
        } else {
            // Inverse `(x, p̂, o)` ⟺ canonical `(o, p, x)`: the `(o, p)`
            // prefix of o's spo block, objects ascending.
            out.extend(
                block2(spo, Triple::spo_key, o, p - base)
                    .iter()
                    .map(|t| t.o),
            );
        }
    }

    /// Pushes the distinct subjects of added completed-alphabet edges
    /// labeled `p` into `out` (ascending).
    pub fn added_sources(&self, p: Id, out: &mut Vec<Id>) {
        if p < self.n_preds_base {
            let before = out.len();
            out.extend(
                block1(&self.adds_pos, Triple::pos_key, p)
                    .iter()
                    .map(|t| t.s),
            );
            out[before..].sort_unstable();
            out.dedup();
        } else {
            // Subjects of p̂ are the canonical objects of p, ascending in
            // the pos order already.
            let before = out.len();
            out.extend(
                block1(&self.adds_pos, Triple::pos_key, p - self.n_preds_base)
                    .iter()
                    .map(|t| t.o),
            );
            out[before..].sort_unstable();
            out.dedup();
        }
    }

    /// Number of added edges with the completed-alphabet label `p`
    /// (labels and their inverses have equal counts, as in the ring).
    pub fn add_count_label(&self, p: Id) -> usize {
        let c = if p < self.n_preds_base {
            p
        } else {
            p - self.n_preds_base
        };
        block1(&self.adds_pos, Triple::pos_key, c).len()
    }

    /// Number of tombstoned edges with the completed-alphabet label `p`.
    pub fn del_count_label(&self, p: Id) -> usize {
        let c = if p < self.n_preds_base {
            p
        } else {
            p - self.n_preds_base
        };
        block1(&self.dels_pos, Triple::pos_key, c).len()
    }

    /// Number of added completed-alphabet edges `(·, p, o)`.
    pub fn add_count_into(&self, o: Id, p: Id) -> usize {
        Self::count_into(&self.adds_pos, &self.adds_spo, self.n_preds_base, o, p)
    }

    /// Number of tombstoned completed-alphabet edges `(·, p, o)`.
    pub fn del_count_into(&self, o: Id, p: Id) -> usize {
        Self::count_into(&self.dels_pos, &self.dels_spo, self.n_preds_base, o, p)
    }

    fn count_into(pos: &[Triple], spo: &[Triple], base: Id, o: Id, p: Id) -> usize {
        if p < base {
            block2(pos, Triple::pos_key, p, o).len()
        } else {
            block2(spo, Triple::spo_key, o, p - base).len()
        }
    }

    /// Number of tombstoned completed-alphabet edges `(s, p, ·)` — the
    /// count that decides whether a ring subject still has a live
    /// `p`-edge.
    pub fn del_count_from(&self, s: Id, p: Id) -> usize {
        if p < self.n_preds_base {
            block2(&self.dels_spo, Triple::spo_key, s, p).len()
        } else {
            block2(&self.dels_pos, Triple::pos_key, p - self.n_preds_base, s).len()
        }
    }

    /// Completed-graph incidence the adds contribute at node `v` (as a
    /// subject of the completed graph: canonical out-edges plus canonical
    /// in-edges).
    pub fn added_incidence(&self, v: Id) -> usize {
        block1(&self.adds_spo, Triple::spo_key, v).len()
            + block1(&self.adds_osp, Triple::osp_key, v).len()
    }

    /// Completed-graph incidence the tombstones remove at node `v`.
    pub fn deleted_incidence(&self, v: Id) -> usize {
        block1(&self.dels_spo, Triple::spo_key, v).len()
            + block1(&self.dels_osp, Triple::osp_key, v).len()
    }

    /// Heap bytes of the six sorted orders.
    pub fn size_bytes(&self) -> usize {
        6 * self.len() * std::mem::size_of::<Triple>()
    }
}

fn write_triples(w: &mut impl Write, ts: &[Triple]) -> io::Result<()> {
    write_u64(w, ts.len() as u64)?;
    for t in ts {
        write_u64(w, t.s)?;
        write_u64(w, t.p)?;
        write_u64(w, t.o)?;
    }
    Ok(())
}

fn read_triples(r: &mut impl Read, base: Id) -> io::Result<Vec<Triple>> {
    let n = read_len(r, MAX_LEN)?;
    // The length is untrusted input: cap the pre-allocation and let a
    // short read fail with an EOF error instead of an OOM abort.
    let mut ts = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let t = Triple::new(read_u64(r)?, read_u64(r)?, read_u64(r)?);
        if t.p >= base {
            return Err(bad_data(format!(
                "delta triple predicate {} outside the base alphabet {base}",
                t.p
            )));
        }
        ts.push(t);
    }
    Ok(ts)
}

impl Persist for DeltaIndex {
    const MAGIC: [u8; 4] = *b"RDl1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        // Only the canonical spo lists are serialized; the pos/osp orders
        // (and the node bound) are derived state rebuilt on load, so the
        // on-disk bytes are a pure function of the triple sets.
        write_u64(w, self.n_preds_base)?;
        write_triples(w, &self.adds_spo)?;
        write_triples(w, &self.dels_spo)
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let base = read_u64(r)?;
        let adds = read_triples(r, base)?;
        let dels = read_triples(r, base)?;
        Ok(DeltaIndex::new(adds, dels, base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: Id, p: Id, o: Id) -> Triple {
        Triple::new(s, p, o)
    }

    fn sample() -> DeltaIndex {
        // Base alphabet of 3 predicates (completed labels 0..6).
        DeltaIndex::new(
            vec![t(0, 1, 2), t(5, 0, 2), t(0, 1, 3), t(7, 2, 0)],
            vec![t(1, 1, 2), t(2, 0, 0)],
            3,
        )
    }

    #[test]
    fn completed_alphabet_lookups() {
        let d = sample();
        assert!(d.add_contains(0, 1, 2));
        assert!(d.add_contains(2, 4, 0)); // inverse view of (0, 1, 2)
        assert!(!d.add_contains(2, 1, 0));
        assert!(d.del_contains(1, 1, 2));
        assert!(d.del_contains(2, 4, 1));
        assert_eq!(d.n_nodes(), 8);
        assert_eq!(d.n_adds(), 4);
        assert_eq!(d.n_dels(), 2);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn into_and_source_enumeration() {
        let d = sample();
        let mut out = Vec::new();
        d.added_into(2, 1, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        // Inverse direction: edges (x, ^1, 0) ⟺ canonical (0, 1, x).
        d.added_into(0, 4, &mut out);
        assert_eq!(out, vec![2, 3]);
        out.clear();
        d.deleted_into(2, 1, &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        d.added_sources(1, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        d.added_sources(4, &mut out); // subjects of ^1 = objects of 1
        assert_eq!(out, vec![2, 3]);
        assert_eq!(d.add_count_label(1), 2);
        assert_eq!(d.add_count_label(4), 2);
        assert_eq!(d.del_count_label(0), 1);
        assert_eq!(d.add_count_into(2, 1), 1);
        assert_eq!(d.del_count_from(1, 1), 1);
        // (0, ^0, ·) edges are canonical (·, 0, 0): the tombstone (2,0,0).
        assert_eq!(d.del_count_from(0, 3), 1);
        assert_eq!(d.del_count_from(2, 3), 0);
    }

    #[test]
    fn incidence_counts() {
        let d = sample();
        // Node 0: adds (0,1,2), (0,1,3) as subject; (7,2,0) as object.
        assert_eq!(d.added_incidence(0), 3);
        // Node 2: adds (0,1,2), (5,0,2) as object.
        assert_eq!(d.added_incidence(2), 2);
        assert_eq!(d.deleted_incidence(2), 2); // (1,1,2) object + (2,0,0) subject
    }

    #[test]
    fn empty_delta() {
        let d = DeltaIndex::empty(4);
        assert!(d.is_empty());
        assert_eq!(d.n_nodes(), 0);
        assert_eq!(d.add_count_label(7), 0);
        assert!(!d.add_contains(0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "outside the base alphabet")]
    fn non_canonical_predicates_are_rejected() {
        DeltaIndex::new(vec![t(0, 3, 1)], vec![], 3);
    }
}
