//! A pragmatic N-Triples reader/writer, so RDF dumps (the paper's input
//! format: Wikidata truthy dumps) load directly.
//!
//! Supported per line: `<subject-iri> <predicate-iri> <object> .` where
//! the object is an IRI, a blank node (`_:label`), or a literal
//! (`"lexical"`, `"lexical"@lang`, `"lexical"^^<datatype>`), with the
//! standard `\" \\ \n \t \r` escapes inside literals. Comments (`#`) and
//! blank lines are skipped. This is the fragment Wikidata truthy dumps
//! use; full W3C conformance (UCHAR escapes et al.) is out of scope and
//! rejected with a clear error rather than mis-parsed.

use crate::{Dict, Graph, Id, Triple};

/// A parse failure with its line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NtError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for NtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N-Triples error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for NtError {}

/// One parsed RDF term, still as text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NtTerm {
    /// `<iri>` (stored without the brackets).
    Iri(String),
    /// `_:label`.
    Blank(String),
    /// A literal with optional language tag or datatype IRI.
    Literal {
        /// The unescaped lexical form.
        lexical: String,
        /// `@lang`, if present.
        lang: Option<String>,
        /// `^^<datatype>`, if present.
        datatype: Option<String>,
    },
}

impl NtTerm {
    /// A canonical dictionary key for the term (IRIs keep brackets so they
    /// cannot collide with literals or blanks).
    pub fn dict_key(&self) -> String {
        match self {
            NtTerm::Iri(i) => format!("<{i}>"),
            NtTerm::Blank(b) => format!("_:{b}"),
            NtTerm::Literal {
                lexical,
                lang,
                datatype,
            } => {
                let mut s = format!("\"{lexical}\"");
                if let Some(l) = lang {
                    s.push('@');
                    s.push_str(l);
                } else if let Some(d) = datatype {
                    s.push_str("^^<");
                    s.push_str(d);
                    s.push('>');
                }
                s
            }
        }
    }
}

/// The parse of one slice of an N-Triples document, with **chunk-local**
/// dictionaries: ids index `nodes`/`preds`, which list the dictionary
/// keys in first-appearance order within the chunk.
///
/// Chunks are the unit of parse parallelism: workers parse disjoint
/// line ranges independently, and [`merge_chunk`] folds the results into
/// global dictionaries **in chunk order** — because each name's global
/// id is assigned at its first appearance, and that appearance lives in
/// the first chunk mentioning it (where it also appears first in the
/// local order), the merged ids are bit-identical to a sequential parse
/// of the whole document.
#[derive(Debug, Default)]
pub struct NtChunk {
    /// Parsed triples as `(subject, predicate, object)` local ids.
    pub triples: Vec<(u32, u32, u32)>,
    /// Node dictionary keys, indexed by local id.
    pub nodes: Vec<String>,
    /// Predicate dictionary keys, indexed by local id.
    pub preds: Vec<String>,
}

fn intern_local(
    map: &mut succinct::util::FxHashMap<String, u32>,
    names: &mut Vec<String>,
    key: String,
) -> u32 {
    if let Some(&id) = map.get(&key) {
        return id;
    }
    let id = names.len() as u32;
    names.push(key.clone());
    map.insert(key, id);
    id
}

/// Parses a slice of an N-Triples document whose first line is line
/// `first_line` (1-based) of the whole document, so errors carry
/// absolute positions even when the document is streamed in chunks.
pub fn parse_ntriples_chunk(text: &str, first_line: usize) -> Result<NtChunk, NtError> {
    let mut chunk = NtChunk::default();
    let mut node_map = succinct::util::FxHashMap::default();
    let mut pred_map = succinct::util::FxHashMap::default();
    for (i, raw) in text.lines().enumerate() {
        let lineno = first_line + i;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut p = Cursor { rest: line, lineno };
        let s = p.term()?;
        let pr = p.term()?;
        let o = p.term()?;
        p.skip_ws();
        if !p.rest.starts_with('.') {
            return Err(p.err("expected terminating '.'"));
        }
        p.rest = &p.rest[1..];
        p.skip_ws();
        if !p.rest.is_empty() {
            return Err(p.err("trailing content after '.'"));
        }
        if matches!(s, NtTerm::Literal { .. }) {
            return Err(p.err("literal in subject position"));
        }
        let NtTerm::Iri(_) = pr else {
            return Err(p.err("predicate must be an IRI"));
        };
        chunk.triples.push((
            intern_local(&mut node_map, &mut chunk.nodes, s.dict_key()),
            intern_local(&mut pred_map, &mut chunk.preds, pr.dict_key()),
            intern_local(&mut node_map, &mut chunk.nodes, o.dict_key()),
        ));
    }
    Ok(chunk)
}

/// Folds one chunk into the global dictionaries and triple list. Chunks
/// must be merged in document order for the id assignment to match a
/// sequential parse (see [`NtChunk`]).
pub fn merge_chunk(chunk: &NtChunk, nodes: &mut Dict, preds: &mut Dict, out: &mut Vec<Triple>) {
    let node_ids: Vec<Id> = chunk.nodes.iter().map(|n| nodes.intern(n)).collect();
    let pred_ids: Vec<Id> = chunk.preds.iter().map(|n| preds.intern(n)).collect();
    out.reserve(chunk.triples.len());
    for &(s, p, o) in &chunk.triples {
        out.push(Triple::new(
            node_ids[s as usize],
            pred_ids[p as usize],
            node_ids[o as usize],
        ));
    }
}

/// Parses an N-Triples document into a graph plus node and predicate
/// dictionaries (keys per [`NtTerm::dict_key`]).
pub fn parse_ntriples(text: &str) -> Result<(Graph, Dict, Dict), NtError> {
    let chunk = parse_ntriples_chunk(text, 1)?;
    let mut nodes = Dict::new();
    let mut preds = Dict::new();
    let mut triples = Vec::with_capacity(chunk.triples.len());
    merge_chunk(&chunk, &mut nodes, &mut preds, &mut triples);
    let g = Graph::new(triples, nodes.len() as Id, preds.len() as Id);
    Ok((g, nodes, preds))
}

/// Serializes a graph back to N-Triples using the dictionaries
/// (dictionary keys are already in N-Triples syntax).
pub fn to_ntriples(graph: &Graph, nodes: &Dict, preds: &Dict) -> String {
    let mut out = String::new();
    for t in graph.triples() {
        out.push_str(nodes.name(t.s));
        out.push(' ');
        out.push_str(preds.name(t.p));
        out.push(' ');
        out.push_str(nodes.name(t.o));
        out.push_str(" .\n");
    }
    out
}

struct Cursor<'a> {
    rest: &'a str,
    lineno: usize,
}

impl Cursor<'_> {
    fn err(&self, msg: impl Into<String>) -> NtError {
        NtError {
            line: self.lineno,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn term(&mut self) -> Result<NtTerm, NtError> {
        self.skip_ws();
        let mut chars = self.rest.chars();
        match chars.next() {
            Some('<') => {
                let end = self
                    .rest
                    .find('>')
                    .ok_or_else(|| self.err("unterminated IRI"))?;
                let iri = self.rest[1..end].to_string();
                if iri.contains(' ') {
                    return Err(self.err("IRI contains whitespace"));
                }
                self.rest = &self.rest[end + 1..];
                Ok(NtTerm::Iri(iri))
            }
            Some('_') => {
                if !self.rest.starts_with("_:") {
                    return Err(self.err("blank node must start with '_:'"));
                }
                let body = &self.rest[2..];
                let end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
                if end == 0 {
                    return Err(self.err("empty blank node label"));
                }
                let label = body[..end].to_string();
                self.rest = &body[end..];
                Ok(NtTerm::Blank(label))
            }
            Some('"') => {
                let (lexical, consumed) = self.unescape_literal()?;
                self.rest = &self.rest[consumed..];
                // Optional @lang or ^^<datatype>.
                if let Some(stripped) = self.rest.strip_prefix('@') {
                    let end = stripped
                        .find(|c: char| c.is_whitespace())
                        .unwrap_or(stripped.len());
                    if end == 0 {
                        return Err(self.err("empty language tag"));
                    }
                    let lang = stripped[..end].to_string();
                    self.rest = &stripped[end..];
                    Ok(NtTerm::Literal {
                        lexical,
                        lang: Some(lang),
                        datatype: None,
                    })
                } else if let Some(stripped) = self.rest.strip_prefix("^^<") {
                    let end = stripped
                        .find('>')
                        .ok_or_else(|| self.err("unterminated datatype IRI"))?;
                    let dt = stripped[..end].to_string();
                    self.rest = &stripped[end + 1..];
                    Ok(NtTerm::Literal {
                        lexical,
                        lang: None,
                        datatype: Some(dt),
                    })
                } else {
                    Ok(NtTerm::Literal {
                        lexical,
                        lang: None,
                        datatype: None,
                    })
                }
            }
            Some(c) => Err(self.err(format!("unexpected character '{c}'"))),
            None => Err(self.err("unexpected end of line")),
        }
    }

    /// Unescapes the quoted literal at the start of `rest` (which begins
    /// with `"`); returns the lexical form and bytes consumed.
    fn unescape_literal(&self) -> Result<(String, usize), NtError> {
        let bytes = self.rest.as_bytes();
        debug_assert_eq!(bytes[0], b'"');
        let mut out = String::new();
        let mut i = 1;
        let chars: Vec<char> = self.rest.chars().collect();
        let mut byte_pos = 1;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '"' => return Ok((out, byte_pos + 1)),
                '\\' => {
                    let esc = chars
                        .get(i + 1)
                        .ok_or_else(|| self.err("dangling escape"))?;
                    let decoded = match esc {
                        '"' => '"',
                        '\\' => '\\',
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => return Err(self.err(format!("unsupported escape '\\{other}'"))),
                    };
                    out.push(decoded);
                    byte_pos += c.len_utf8() + esc.len_utf8();
                    i += 2;
                }
                _ => {
                    out.push(c);
                    byte_pos += c.len_utf8();
                    i += 1;
                }
            }
        }
        Err(self.err("unterminated literal"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_wikidata_like_lines() {
        let text = r#"
# a comment
<http://wd/Q42> <http://wd/P31> <http://wd/Q5> .
<http://wd/Q42> <http://wd/label> "Douglas Adams"@en .
<http://wd/Q42> <http://wd/P569> "1952-03-11"^^<http://www.w3.org/2001/XMLSchema#date> .
_:b0 <http://wd/P31> <http://wd/Q5> .
"#;
        let (g, nodes, preds) = parse_ntriples(text).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(preds.len(), 3);
        assert!(nodes.get("<http://wd/Q42>").is_some());
        assert!(nodes.get("\"Douglas Adams\"@en").is_some());
        assert!(nodes.get("_:b0").is_some());
        assert!(nodes
            .get("\"1952-03-11\"^^<http://www.w3.org/2001/XMLSchema#date>")
            .is_some());
    }

    #[test]
    fn escapes_roundtrip() {
        let text = r#"<a> <p> "line\nbreak \"quoted\" tab\t" ."#;
        let (g, nodes, _) = parse_ntriples(text).unwrap();
        assert_eq!(g.len(), 1);
        let key = nodes.name(g.triples()[0].o);
        assert!(key.contains('\n'), "{key:?}");
        assert!(key.contains("\"quoted\""), "{key:?}");
    }

    #[test]
    fn serialization_roundtrips() {
        let text = "<a> <p> <b> .\n<b> <q> \"x\"@fr .\n";
        let (g, nodes, preds) = parse_ntriples(text).unwrap();
        let out = to_ntriples(&g, &nodes, &preds);
        let (g2, _, _) = parse_ntriples(&out).unwrap();
        assert_eq!(g.len(), g2.len());
    }

    #[test]
    fn malformed_lines_rejected_with_position() {
        for (line, text) in [
            (1, "<a> <p> <b>"),                 // missing dot
            (1, "<a> <p> ."),                   // missing object
            (1, "\"lit\" <p> <b> ."),           // literal subject
            (1, "<a> _:b <c> ."),               // blank predicate
            (1, "<a> <p> \"unterminated ."),    // bad literal
            (1, "<a> <p> \"bad\\x\" ."),        // bad escape
            (2, "<a> <p> <b> .\n<a> <p <b> ."), // unterminated IRI
        ] {
            let err = parse_ntriples(text).unwrap_err();
            assert_eq!(err.line, line, "for {text:?}: {err}");
        }
    }

    #[test]
    fn queryable_end_to_end() {
        use crate::ring::RingOptions;
        let text = "<a> <p> <b> .\n<b> <p> <c> .\n";
        let (g, nodes, preds) = parse_ntriples(text).unwrap();
        let ring = crate::Ring::build(&g, RingOptions::default());
        let p = preds.get("<p>").unwrap();
        let a = nodes.get("<a>").unwrap();
        let mut objs = Vec::new();
        ring.objects_for(a, p, &mut |o| objs.push(o));
        assert_eq!(objs, vec![nodes.get("<b>").unwrap()]);
    }
}
