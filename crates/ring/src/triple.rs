//! Triples and their circular sort orders.

use crate::Id;

/// A labeled edge `s --p--> o` of the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject (source node).
    pub s: Id,
    /// Predicate (edge label).
    pub p: Id,
    /// Object (target node).
    pub o: Id,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(s: Id, p: Id, o: Id) -> Self {
        Self { s, p, o }
    }

    /// Key for the `spo` lexicographic order (which `L_o` lists objects in).
    #[inline]
    pub fn spo_key(&self) -> (Id, Id, Id) {
        (self.s, self.p, self.o)
    }

    /// Key for the `pos` order (which `L_s` lists subjects in).
    #[inline]
    pub fn pos_key(&self) -> (Id, Id, Id) {
        (self.p, self.o, self.s)
    }

    /// Key for the `osp` order (which `L_p` lists predicates in).
    #[inline]
    pub fn osp_key(&self) -> (Id, Id, Id) {
        (self.o, self.s, self.p)
    }
}

impl From<(Id, Id, Id)> for Triple {
    fn from((s, p, o): (Id, Id, Id)) -> Self {
        Self { s, p, o }
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} -{}-> {})", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_rotate_components() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.spo_key(), (1, 2, 3));
        assert_eq!(t.pos_key(), (2, 3, 1));
        assert_eq!(t.osp_key(), (3, 1, 2));
    }

    #[test]
    fn ordering_is_spo() {
        let mut v = vec![
            Triple::new(2, 0, 0),
            Triple::new(1, 9, 9),
            Triple::new(1, 0, 5),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Triple::new(1, 0, 5),
                Triple::new(1, 9, 9),
                Triple::new(2, 0, 0)
            ]
        );
    }
}
