//! The mappable on-disk index format `RRPQM01`.
//!
//! Layout: an 8-byte magic, a fixed table of contents, then one
//! 8-byte-aligned section per component of the index:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ "RRPQM01\0" │ version u64 │ n_sections u64                   │
//! │ TOC: (tag u64, offset u64, byte_len u64, crc32c u64) × 9     │
//! ├──────────────────────────────────────────────────────────────┤
//! │ 1 META    n, n_nodes, n_preds, n_preds_base, has_inverses    │
//! │ 2 L_O     wavelet matrix (objects in (s,p) order)            │
//! │ 3 L_S     wavelet matrix (subjects in (p,o) order)           │
//! │ 4 L_P     wavelet matrix (predicates in (o,s) order)         │
//! │ 5 C_S     boundaries                                         │
//! │ 6 C_P     boundaries                                         │
//! │ 7 C_O     boundaries                                         │
//! │ 8 NODES   dictionary (blob + offsets + name-sorted ids)      │
//! │ 9 PREDS   dictionary                                         │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every array inside a section is stored byte-identical to its
//! in-memory form and 8-byte aligned relative to the file start, so
//! [`open_index`] can point the succinct structures straight into an
//! `mmap` of the file: cold open validates shapes and headers but never
//! copies or rebuilds the payload. The old stream formats (`RRPQDB01`
//! and the component `R??1` records) remain supported by [`crate::io`];
//! this module is the fast path beside them.
//!
//! Alignment is a **soundness** invariant, not a preference: a
//! misaligned `&[u64]` reinterpretation is undefined behavior, so the
//! reader rejects any table-of-contents offset off the 8-byte grid
//! unconditionally (see `toc_offsets_must_be_aligned` in the tests).
//!
//! ## Versions and checksums
//!
//! Version 2 (current) stores a CRC32C per section in the TOC and is
//! written atomically (temp file + fsync + rename) by [`write_index`].
//! Version 1 files (24-byte TOC entries, no checksums) still open, with
//! a warning that they carry no integrity protection. To preserve the
//! O(header) zero-copy cold open — the whole point of this format — an
//! `mmap` open validates structure only; checksums are verified on heap
//! opens (which touch every byte anyway), when `RPQ_VERIFY_ON_OPEN=1`,
//! and by [`verify_index_checksums`] (the `verify` CLI subcommand).

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use succinct::mapped::{
    err_data, host_supported, read_elias_fano, read_rank_select, read_wavelet_matrix,
    write_elias_fano, write_rank_select, write_wavelet_matrix, MapReader, SectionWriter, MAX_LEN,
};
use succinct::{MappedFile, ResidentMode};

use crate::{Boundaries, Dict, Id, Ring};

/// Magic bytes opening a mappable index file.
pub const MAPPED_MAGIC: [u8; 8] = *b"RRPQM01\0";
/// Current version of the mapped format (2 = per-section CRC32C in the
/// TOC; 1 = checksum-less, still readable).
pub const MAPPED_VERSION: u64 = 2;

const TAG_META: u64 = 1;
const TAG_L_O: u64 = 2;
const TAG_L_S: u64 = 3;
const TAG_L_P: u64 = 4;
const TAG_C_S: u64 = 5;
const TAG_C_P: u64 = 6;
const TAG_C_O: u64 = 7;
const TAG_NODES: u64 = 8;
const TAG_PREDS: u64 = 9;
const N_SECTIONS: usize = 9;

/// Header bytes before the first section: magic + version + count +
/// the table of contents (32 bytes per entry in v2). 312 bytes —
/// itself a multiple of 8, so the first section starts aligned.
pub const HEADER_LEN: usize = 8 + 8 + 8 + N_SECTIONS * 32;

/// Header size of the legacy checksum-less v1 layout (24-byte entries).
const HEADER_LEN_V1: usize = 8 + 8 + 8 + N_SECTIONS * 24;

/// Human names per section, indexed `tag - 1` (error messages, verify
/// reports).
pub const SECTION_NAMES: [&str; N_SECTIONS] = [
    "META", "L_O", "L_S", "L_P", "C_S", "C_P", "C_O", "NODES", "PREDS",
];

/// How [`open_index`] should back the loaded structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenMode {
    /// `mmap` where the platform supports it, aligned heap read
    /// otherwise.
    #[default]
    Auto,
    /// Require a real `mmap`; error where unavailable.
    Mmap,
    /// Force the aligned heap read (for differential testing and for
    /// hosts whose page cache should not hold the index).
    Heap,
}

/// A ring index opened from a `RRPQM01` file, plus how it is resident.
#[derive(Debug)]
pub struct MappedIndex {
    /// The ring, its arrays borrowing the opened file.
    pub ring: Ring,
    /// Node dictionary (mapped form).
    pub nodes: Dict,
    /// Predicate dictionary (mapped form).
    pub preds: Dict,
    /// Whether the bytes live in a kernel mapping or on the heap.
    pub resident: ResidentMode,
    /// Bytes held by the kernel mapping (0 in heap mode).
    pub mapped_bytes: u64,
}

/// Whether `path` starts with the mapped-format magic (a cheap sniff
/// for dispatching between `RRPQM01` and the stream formats).
pub fn is_mapped_file(path: &Path) -> bool {
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).is_ok() && magic == MAPPED_MAGIC
}

fn section(
    f: impl FnOnce(&mut SectionWriter<&mut Vec<u8>>) -> io::Result<()>,
) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut w = SectionWriter::new(&mut buf);
    f(&mut w)?;
    w.pad()?;
    Ok(buf)
}

fn write_boundaries<W: Write>(w: &mut SectionWriter<W>, b: &Boundaries) -> io::Result<()> {
    match b {
        Boundaries::Dense(v) => {
            w.u64(0)?;
            w.u64(v.len() as u64)?;
            w.u64s(v)
        }
        Boundaries::Sparse { bits, universe, n } => {
            w.u64(1)?;
            w.u64(*universe)?;
            w.u64(*n as u64)?;
            write_rank_select(w, bits)
        }
        Boundaries::EliasFano(ef) => {
            w.u64(2)?;
            write_elias_fano(w, ef)
        }
    }
}

fn read_boundaries(r: &mut MapReader) -> io::Result<Boundaries> {
    match r.u64()? {
        0 => {
            let n = r.len_u64(MAX_LEN)?;
            let v = r.slab_u64(n)?;
            if v.is_empty() {
                return Err(err_data("empty dense boundaries"));
            }
            if v[0] != 0 {
                return Err(err_data("boundaries must start at 0"));
            }
            if v.windows(2).any(|w| w[0] > w[1]) {
                return Err(err_data("boundary counts must be monotone"));
            }
            Ok(Boundaries::Dense(v))
        }
        1 => {
            let universe = r.u64()?;
            let n = r.len_u64(MAX_LEN)?;
            let bits = read_rank_select(r)?;
            if bits.len() as u64 != universe + n as u64 {
                return Err(err_data("sparse boundary length mismatch"));
            }
            if bits.count_ones() as u64 != universe {
                return Err(err_data("sparse boundary ones-count mismatch"));
            }
            Ok(Boundaries::Sparse { bits, universe, n })
        }
        2 => {
            let ef = read_elias_fano(r)?;
            if ef.is_empty() {
                return Err(err_data("empty elias-fano boundaries"));
            }
            if ef.get(0) != 0 {
                return Err(err_data("boundaries must start at 0"));
            }
            Ok(Boundaries::EliasFano(ef))
        }
        t => Err(err_data(format!("unknown boundaries tag {t}"))),
    }
}

fn write_dict<W: Write>(w: &mut SectionWriter<W>, d: &Dict) -> io::Result<()> {
    let (blob, offsets, order) = d.to_mapped_parts();
    w.u64(order.len() as u64)?;
    w.u64(blob.len() as u64)?;
    w.u64s(&offsets)?;
    w.u64s(&order)?;
    w.bytes(&blob)?;
    w.pad()
}

fn read_dict(r: &mut MapReader) -> io::Result<Dict> {
    let n = r.len_u64(MAX_LEN)?;
    let blob_len = r.len_u64(MAX_LEN)?;
    let offsets = r.slab_u64(n + 1)?;
    let order = r.slab_u64(n)?;
    let blob = r.slab_u8(blob_len)?;
    Dict::from_mapped_parts(blob, offsets, order).map_err(err_data)
}

/// Writes `ring` plus its dictionaries as a mappable `RRPQM01` file
/// (version 2: per-section CRC32C in the TOC), atomically — the bytes go
/// to a same-directory temp file that is fsync'd and renamed over
/// `path`, so a crash mid-save preserves the previous index. Returns the
/// total bytes written.
pub fn write_index(path: &Path, ring: &Ring, nodes: &Dict, preds: &Dict) -> io::Result<u64> {
    let sections: Vec<(u64, Vec<u8>)> = vec![
        (
            TAG_META,
            section(|w| {
                w.u64(ring.n_triples() as u64)?;
                w.u64(ring.n_nodes())?;
                w.u64(ring.n_preds())?;
                w.u64(ring.n_preds_base())?;
                w.u64(ring.has_inverses() as u64)
            })?,
        ),
        (TAG_L_O, section(|w| write_wavelet_matrix(w, ring.l_o()))?),
        (TAG_L_S, section(|w| write_wavelet_matrix(w, ring.l_s()))?),
        (TAG_L_P, section(|w| write_wavelet_matrix(w, ring.l_p()))?),
        (TAG_C_S, section(|w| write_boundaries(w, ring.c_s_ref()))?),
        (TAG_C_P, section(|w| write_boundaries(w, ring.c_p_ref()))?),
        (TAG_C_O, section(|w| write_boundaries(w, ring.c_o_ref()))?),
        (TAG_NODES, section(|w| write_dict(w, nodes))?),
        (TAG_PREDS, section(|w| write_dict(w, preds))?),
    ];
    crate::durable::atomic_write(path, |out| {
        out.write_all(&MAPPED_MAGIC)?;
        out.write_all(&MAPPED_VERSION.to_le_bytes())?;
        out.write_all(&(N_SECTIONS as u64).to_le_bytes())?;
        let mut off = HEADER_LEN as u64;
        for (tag, buf) in &sections {
            debug_assert!(
                off.is_multiple_of(8),
                "section offsets must stay 8-byte aligned"
            );
            out.write_all(&tag.to_le_bytes())?;
            out.write_all(&off.to_le_bytes())?;
            out.write_all(&(buf.len() as u64).to_le_bytes())?;
            out.write_all(&(succinct::checksum::crc32c(buf) as u64).to_le_bytes())?;
            off += buf.len() as u64;
        }
        for (_, buf) in &sections {
            out.write_all(buf)?;
        }
        Ok(())
    })
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// A parsed and structurally validated table of contents.
struct Toc {
    /// On-disk format version (1 or 2).
    version: u64,
    /// `(offset, byte_len)` per section, indexed `tag - 1`.
    sections: [(usize, usize); N_SECTIONS],
    /// Per-section CRC32C from the TOC (`None` for checksum-less v1).
    crcs: Option<[u32; N_SECTIONS]>,
}

/// Parses and validates the header (the TOC must list the nine known
/// tags in order). Every offset is checked to be 8-byte aligned — the
/// soundness invariant behind the zero-copy `&[u64]` views — and in
/// bounds. Understands both the current 32-byte-entry v2 layout and the
/// legacy 24-byte-entry v1 layout.
fn read_toc(map: &MappedFile) -> io::Result<Toc> {
    let bytes = map.as_bytes();
    if bytes.len() < 24 {
        return Err(err_data("file too short for a mapped index header"));
    }
    if bytes[..8] != MAPPED_MAGIC {
        if bytes.starts_with(b"RRPQDB01") || bytes.starts_with(b"RRPQDU01") {
            return Err(err_data(
                "stream-format index (RRPQDB01/RRPQDU01), not a mapped RRPQM01 file",
            ));
        }
        return Err(err_data("bad magic: not a RRPQM01 mapped index"));
    }
    let version = u64_at(bytes, 8);
    let (entry_len, header_len) = match version {
        1 => (24usize, HEADER_LEN_V1),
        2 => (32usize, HEADER_LEN),
        v => {
            return Err(err_data(format!(
                "unsupported mapped format version {v} (supported: 1, {MAPPED_VERSION})"
            )))
        }
    };
    if bytes.len() < header_len {
        return Err(err_data("file too short for a mapped index header"));
    }
    if u64_at(bytes, 16) != N_SECTIONS as u64 {
        return Err(err_data("unexpected section count"));
    }
    let mut sections = [(0usize, 0usize); N_SECTIONS];
    let mut crcs = [0u32; N_SECTIONS];
    for (i, entry) in sections.iter_mut().enumerate() {
        let at = 24 + i * entry_len;
        let tag = u64_at(bytes, at);
        let off = u64_at(bytes, at + 8);
        let len = u64_at(bytes, at + 16);
        if tag != (i as u64) + 1 {
            return Err(err_data(format!("unexpected section tag {tag}")));
        }
        if !off.is_multiple_of(8) {
            return Err(err_data(format!(
                "section {tag} offset {off} is not 8-byte aligned"
            )));
        }
        if (off as usize) < header_len
            || off.checked_add(len).is_none_or(|e| e > bytes.len() as u64)
        {
            return Err(err_data(format!("section {tag} extends past end of file")));
        }
        *entry = (off as usize, len as usize);
        if entry_len == 32 {
            let crc = u64_at(bytes, at + 24);
            if crc > u32::MAX as u64 {
                return Err(err_data(format!("section {tag} checksum out of range")));
            }
            crcs[i] = crc as u32;
        }
    }
    Ok(Toc {
        version,
        sections,
        crcs: (version >= 2).then_some(crcs),
    })
}

/// Checks every section's bytes against the CRC32C recorded in the TOC.
/// Returns the typed
/// [`ChecksumMismatch`](crate::durable::DurabilityError::ChecksumMismatch)
/// error on the first disagreement.
fn check_section_crcs(map: &MappedFile, toc: &Toc) -> io::Result<()> {
    let Some(crcs) = &toc.crcs else {
        return Ok(());
    };
    let bytes = map.as_bytes();
    for (i, &(off, len)) in toc.sections.iter().enumerate() {
        let actual = succinct::checksum::crc32c(&bytes[off..off + len]);
        if actual != crcs[i] {
            return Err(crate::durable::checksum_error(
                format!("mapped index section {}", SECTION_NAMES[i]),
                crcs[i],
                actual,
            ));
        }
    }
    Ok(())
}

/// Deep-checks the section checksums of the `RRPQM01` file at `path`
/// against its TOC (every byte is read). Returns the number of sections
/// verified: `N_SECTIONS` for a v2 file, `0` for a checksum-less v1
/// file. Structural and cross-component validation is [`open_index`]'s
/// job; the `verify` CLI subcommand runs both.
pub fn verify_index_checksums(path: &Path) -> io::Result<usize> {
    let map = MappedFile::open_heap(path)?;
    let toc = read_toc(&map)?;
    check_section_crcs(&map, &toc)?;
    Ok(if toc.crcs.is_some() { N_SECTIONS } else { 0 })
}

/// Opens a `RRPQM01` file, pointing the index structures into the file
/// in place. Cold-open cost is header parsing plus shape validation —
/// the succinct payloads are neither copied nor rebuilt (the dictionary
/// section is scanned once for UTF-8/order validation).
pub fn open_index(path: &Path, mode: OpenMode) -> io::Result<MappedIndex> {
    if !host_supported() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mapped index format requires a little-endian host",
        ));
    }
    let map = match mode {
        OpenMode::Auto => MappedFile::open(path)?,
        OpenMode::Heap => MappedFile::open_heap(path)?,
        OpenMode::Mmap => {
            let m = MappedFile::open(path)?;
            if m.mode() != ResidentMode::Mmap {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "mmap is unavailable on this platform",
                ));
            }
            m
        }
    };
    open_from_map(map)
}

fn open_from_map(map: Arc<MappedFile>) -> io::Result<MappedIndex> {
    let toc = read_toc(&map)?;
    if toc.crcs.is_none() {
        eprintln!(
            "warning: mapped index is format v{} (no section checksums); re-save to upgrade",
            toc.version
        );
    }
    // Checksum policy: heap opens touch every byte anyway, so verifying
    // is nearly free; mmap opens stay O(header) to preserve the
    // zero-copy cold-open contract unless explicitly asked.
    let verify_env = std::env::var("RPQ_VERIFY_ON_OPEN").is_ok_and(|v| v != "0" && !v.is_empty());
    if map.mode() == ResidentMode::Heap || verify_env {
        check_section_crcs(&map, &toc)?;
    }
    let toc = toc.sections;
    let reader = |i: usize| MapReader::new(Arc::clone(&map), toc[i].0, toc[i].1);

    let mut meta = reader(0)?;
    let n = meta.len_u64(MAX_LEN)?;
    let n_nodes: Id = meta.u64()?;
    let n_preds: Id = meta.u64()?;
    let n_preds_base: Id = meta.u64()?;
    let has_inverses = match meta.u64()? {
        0 => false,
        1 => true,
        _ => return Err(err_data("invalid has_inverses flag")),
    };
    meta.finish()?;
    if n_nodes > MAX_LEN || n_preds > MAX_LEN {
        return Err(err_data("alphabet size out of range"));
    }
    let expected_preds = if n == 0 {
        (2 * n_preds_base).max(1)
    } else {
        2 * n_preds_base
    };
    if has_inverses && n_preds != expected_preds {
        return Err(err_data("inverse alphabet size mismatch"));
    }

    let mut sec = reader(1)?;
    let l_o = read_wavelet_matrix(&mut sec)?;
    sec.finish()?;
    let mut sec = reader(2)?;
    let l_s = read_wavelet_matrix(&mut sec)?;
    sec.finish()?;
    let mut sec = reader(3)?;
    let l_p = read_wavelet_matrix(&mut sec)?;
    sec.finish()?;
    let mut sec = reader(4)?;
    let c_s = read_boundaries(&mut sec)?;
    sec.finish()?;
    let mut sec = reader(5)?;
    let c_p = read_boundaries(&mut sec)?;
    sec.finish()?;
    let mut sec = reader(6)?;
    let c_o = read_boundaries(&mut sec)?;
    sec.finish()?;
    let mut sec = reader(7)?;
    let nodes = read_dict(&mut sec)?;
    sec.finish()?;
    let mut sec = reader(8)?;
    let preds = read_dict(&mut sec)?;
    sec.finish()?;

    // The same cross-component consistency checks the stream loader
    // makes (crate::io), so a structurally valid but inconsistent file
    // cannot produce out-of-range ids at query time.
    for (name, wm) in [("L_o", &l_o), ("L_s", &l_s), ("L_p", &l_p)] {
        if wm.len() != n {
            return Err(err_data(format!("{name} length mismatch")));
        }
    }
    if l_o.sigma() != n_nodes.max(1)
        || l_s.sigma() != n_nodes.max(1)
        || l_p.sigma() != n_preds.max(1)
    {
        return Err(err_data("column alphabet mismatch"));
    }
    for (name, b, uni) in [
        ("C_s", &c_s, n_nodes),
        ("C_p", &c_p, n_preds),
        ("C_o", &c_o, n_nodes),
    ] {
        if b.universe() != uni {
            return Err(err_data(format!("{name} universe mismatch")));
        }
        if b.get(uni) != n {
            return Err(err_data(format!("{name} total mismatch")));
        }
    }
    // `Ring::build` clamps the node universe to >= 1 even for an empty
    // graph, so an empty index legitimately pairs n_nodes == 1 with an
    // empty dictionary (mirroring the inverse-alphabet clamp above).
    if nodes.len() as Id != n_nodes && !(n == 0 && nodes.is_empty()) {
        return Err(err_data("node dictionary size mismatch"));
    }
    if preds.len() as Id != n_preds_base {
        return Err(err_data("predicate dictionary size mismatch"));
    }

    let resident = map.mode();
    let mapped_bytes = match resident {
        ResidentMode::Mmap => map.len() as u64,
        ResidentMode::Heap => 0,
    };
    Ok(MappedIndex {
        ring: Ring::from_raw_parts(
            l_o,
            l_s,
            l_p,
            c_s,
            c_p,
            c_o,
            n,
            n_nodes,
            n_preds,
            n_preds_base,
            has_inverses,
        ),
        nodes,
        preds,
        resident,
        mapped_bytes,
    })
}
