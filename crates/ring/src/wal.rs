//! Write-ahead log for the updatable store.
//!
//! The LSM-style overlay (PR 5) made commits cheap and in-memory — and
//! therefore volatile: a crash between `commit()` and the next `save()`
//! silently dropped acknowledged updates. The WAL closes that window with
//! the classic log-structured discipline: every commit appends its ops
//! plus a commit marker to an append-only log and fsyncs *before* the
//! in-memory epoch is published, so an acknowledged commit is always
//! reconstructible.
//!
//! ## Format
//!
//! A 16-byte header (`b"RRPQWAL1"` + `base_epoch: u64` LE — the epoch of
//! the snapshot this log is relative to) followed by framed records:
//!
//! ```text
//! [len: u32 LE][crc32c(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Payloads: tag byte `1` (insert) / `2` (delete) followed by three
//! `u32`-length-prefixed UTF-8 strings (subject, predicate, object), or
//! tag `3` (commit) followed by the published epoch as `u64` LE. Records
//! are *name-level*, not id-level: replay re-interns names through the
//! normal insert path, which reproduces dictionary assignment
//! deterministically — an id-level log would dangle for names interned
//! after the last snapshot.
//!
//! ## Recovery
//!
//! [`Wal::recover`] scans forward, keeping only batches closed by a
//! commit record. An incomplete or checksum-broken *final* frame is a
//! torn tail from a crashed append — it is physically truncated and
//! recovery proceeds. A broken frame with more data *behind* it is
//! mid-file corruption of acknowledged data and surfaces as a typed
//! [`DurabilityError`](crate::durable::DurabilityError) instead of being
//! silently dropped. Replay applies **all** committed batches on top of
//! the snapshot: re-applying a suffix of ops is idempotent (the final
//! state of each triple is decided by its last op), so recovery does not
//! need to know exactly which batches the snapshot already folded in.
//!
//! `save()`/`compact()` checkpoints [`rotate`](Wal::rotate) the log back
//! to an empty header once the snapshot on disk covers everything.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use succinct::checksum::crc32c;

use crate::durable::{self, FaultWriter};

/// Magic opening every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"RRPQWAL1";
/// Header size: magic + base epoch.
pub const WAL_HEADER_LEN: u64 = 16;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_COMMIT: u8 = 3;

/// One logged update, at the name level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert the triple `(subject, predicate, object)`.
    Insert {
        /// Subject name.
        s: String,
        /// Predicate name.
        p: String,
        /// Object name.
        o: String,
    },
    /// Delete the triple `(subject, predicate, object)`.
    Delete {
        /// Subject name.
        s: String,
        /// Predicate name.
        p: String,
        /// Object name.
        o: String,
    },
}

/// One committed batch recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// The epoch the commit published (informational; replay is
    /// idempotent and does not depend on it).
    pub epoch: u64,
    /// The ops of the batch, in logged order.
    pub ops: Vec<WalOp>,
}

/// What [`Wal::recover`] found.
#[derive(Debug)]
pub struct WalRecovery {
    /// The snapshot epoch the log says it is relative to.
    pub base_epoch: u64,
    /// All committed batches, in order.
    pub batches: Vec<WalBatch>,
    /// Bytes of torn tail that were truncated away (0 on a clean log).
    pub truncated_bytes: u64,
}

impl WalRecovery {
    /// Total number of replayable ops across all committed batches.
    pub fn op_count(&self) -> usize {
        self.batches.iter().map(|b| b.ops.len()).sum()
    }
}

/// An open write-ahead log, positioned for appends.
pub struct Wal {
    file: FaultWriter<File>,
    path: PathBuf,
    base_epoch: u64,
}

fn corrupt(context: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        crate::durable::DurabilityError::TruncatedFile { context },
    )
}

fn encode_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn encode_op(buf: &mut Vec<u8>, op: &WalOp) {
    let mut payload = Vec::new();
    let (tag, s, p, o) = match op {
        WalOp::Insert { s, p, o } => (TAG_INSERT, s, p, o),
        WalOp::Delete { s, p, o } => (TAG_DELETE, s, p, o),
    };
    payload.push(tag);
    encode_str(&mut payload, s);
    encode_str(&mut payload, p);
    encode_str(&mut payload, o);
    frame(buf, &payload);
}

fn frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32c(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

fn decode_str(payload: &[u8], pos: &mut usize, what: &str) -> io::Result<String> {
    let bytes = payload
        .get(*pos..*pos + 4)
        .ok_or_else(|| corrupt(format!("WAL record: {what} length cut off")))?;
    let len = u32::from_le_bytes(bytes.try_into().unwrap()) as usize;
    *pos += 4;
    let raw = payload
        .get(*pos..*pos + len)
        .ok_or_else(|| corrupt(format!("WAL record: {what} bytes cut off")))?;
    *pos += len;
    String::from_utf8(raw.to_vec()).map_err(|_| corrupt(format!("WAL record: {what} is not UTF-8")))
}

impl Wal {
    /// Creates (or truncates) the log at `path` with a fresh header, and
    /// fsyncs both the file and its directory so the empty log survives a
    /// crash.
    pub fn create(path: &Path, base_epoch: u64) -> io::Result<Wal> {
        let file = File::create(path)?;
        let mut fault = FaultWriter::new(file);
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&base_epoch.to_le_bytes());
        fault.write_all(&header)?;
        fault.sync_all()?;
        durable::fsync_parent_dir(path)?;
        Ok(Wal {
            file: fault,
            path: path.to_path_buf(),
            base_epoch,
        })
    }

    /// Opens an existing log: parses every committed batch, physically
    /// truncates any torn tail, and returns the log positioned for
    /// appends together with what was recovered.
    pub fn recover(path: &Path) -> io::Result<(Wal, WalRecovery)> {
        let (recovery, committed_end) = parse_log(path)?;
        let file = OpenOptions::new().write(true).open(path)?;
        if recovery.truncated_bytes > 0 {
            file.set_len(committed_end as u64)?;
            file.sync_all()?;
        }
        let mut fault = FaultWriter::new(file);
        fault.seek_end(committed_end as u64)?;
        let base_epoch = recovery.base_epoch;
        Ok((
            Wal {
                file: fault,
                path: path.to_path_buf(),
                base_epoch,
            },
            recovery,
        ))
    }

    /// Read-only variant of [`Wal::recover`]: parses the log and reports
    /// what recovery would find — committed batches and torn-tail bytes —
    /// without truncating anything or opening the file for append (the
    /// `verify` subcommand's WAL check).
    pub fn inspect(path: &Path) -> io::Result<WalRecovery> {
        parse_log(path).map(|(recovery, _)| recovery)
    }
}

/// Parses the log at `path`, returning the recovery summary plus the
/// byte offset where the last committed batch ends (the truncation
/// point for torn or uncommitted tails).
fn parse_log(path: &Path) -> io::Result<(WalRecovery, usize)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(corrupt(format!(
            "WAL {} shorter than its header",
            path.display()
        )));
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a WAL file (bad magic)", path.display()),
        ));
    }
    let base_epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());

    let mut batches = Vec::new();
    let mut pending: Vec<WalOp> = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    // End of the last fully committed batch — the truncation point if
    // the tail is torn or uncommitted.
    let mut committed_end = pos;
    let mut torn = false;
    while pos < bytes.len() {
        let frame_start = pos;
        // Frame header.
        let Some(head) = bytes.get(frame_start..frame_start + 8) else {
            torn = true;
            break;
        };
        let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
        let payload_start = frame_start + 8;
        let Some(payload) = bytes.get(payload_start..payload_start + len) else {
            // Frame extends past EOF: torn append.
            torn = true;
            break;
        };
        if crc32c(payload) != crc {
            if payload_start + len == bytes.len() {
                // Broken *final* frame: torn append that got its
                // header down but not all payload bytes in order.
                torn = true;
                break;
            }
            // Broken frame with data behind it: committed bytes
            // rotted. Refuse to silently drop acknowledged updates.
            return Err(durable::checksum_error(
                format!("WAL {} record at offset {frame_start}", path.display()),
                crc,
                crc32c(payload),
            ));
        }
        pos = payload_start + len;
        match payload.first().copied() {
            Some(TAG_INSERT) | Some(TAG_DELETE) => {
                let tag = payload[0];
                let mut p = 1usize;
                let s = decode_str(payload, &mut p, "subject")?;
                let pr = decode_str(payload, &mut p, "predicate")?;
                let o = decode_str(payload, &mut p, "object")?;
                if p != payload.len() {
                    return Err(corrupt(format!(
                        "WAL {} record at offset {frame_start} has trailing bytes",
                        path.display()
                    )));
                }
                pending.push(if tag == TAG_INSERT {
                    WalOp::Insert { s, p: pr, o }
                } else {
                    WalOp::Delete { s, p: pr, o }
                });
            }
            Some(TAG_COMMIT) => {
                let epoch_bytes = payload.get(1..9).ok_or_else(|| {
                    corrupt(format!(
                        "WAL {} commit record at offset {frame_start} cut off",
                        path.display()
                    ))
                })?;
                let epoch = u64::from_le_bytes(epoch_bytes.try_into().unwrap());
                batches.push(WalBatch {
                    epoch,
                    ops: std::mem::take(&mut pending),
                });
                committed_end = pos;
            }
            _ => {
                return Err(corrupt(format!(
                    "WAL {} record at offset {frame_start} has unknown tag",
                    path.display()
                )));
            }
        }
    }
    // Uncommitted trailing ops (valid frames, no commit marker) were
    // never acknowledged: drop them along with any torn frame.
    let truncated_bytes = (bytes.len() - committed_end) as u64;
    let _ = torn; // both torn frames and uncommitted ops truncate
    Ok((
        WalRecovery {
            base_epoch,
            batches,
            truncated_bytes,
        },
        committed_end,
    ))
}

impl Wal {
    /// Appends one batch — every op followed by a commit record carrying
    /// `epoch` — as a single write, then fsyncs. Only after this returns
    /// may the in-memory epoch be published.
    pub fn append_batch(&mut self, ops: &[WalOp], epoch: u64) -> io::Result<()> {
        let mut buf = Vec::new();
        for op in ops {
            encode_op(&mut buf, op);
        }
        let mut commit = Vec::with_capacity(9);
        commit.push(TAG_COMMIT);
        commit.extend_from_slice(&epoch.to_le_bytes());
        frame(&mut buf, &commit);
        self.file.write_all(&buf)?;
        self.file.sync_all()
    }

    /// Checkpoints: truncates the log back to a fresh header relative to
    /// `base_epoch` (called right after a snapshot made everything before
    /// it durable).
    pub fn rotate(&mut self, base_epoch: u64) -> io::Result<()> {
        *self = Wal::create(&self.path, base_epoch)?;
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The snapshot epoch the log is relative to.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{durability_error, DurabilityError};
    use std::fs;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rpq-wal-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join("test.wal")
    }

    fn ins(s: &str, p: &str, o: &str) -> WalOp {
        WalOp::Insert {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    fn del(s: &str, p: &str, o: &str) -> WalOp {
        WalOp::Delete {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    #[test]
    fn roundtrip_batches() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path, 7).unwrap();
        wal.append_batch(&[ins("a", "p", "b"), del("c", "q", "d")], 8)
            .unwrap();
        wal.append_batch(&[ins("e", "p", "f")], 9).unwrap();
        drop(wal);

        let (_wal, rec) = Wal::recover(&path).unwrap();
        assert_eq!(rec.base_epoch, 7);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.batches[0].epoch, 8);
        assert_eq!(
            rec.batches[0].ops,
            vec![ins("a", "p", "b"), del("c", "q", "d")]
        );
        assert_eq!(rec.batches[1].ops, vec![ins("e", "p", "f")]);
        assert_eq!(rec.op_count(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append_batch(&[ins("a", "p", "b")], 1).unwrap();
        wal.append_batch(&[ins("x", "p", "y")], 2).unwrap();
        drop(wal);

        // Tear the final batch: chop bytes off the end.
        let full = fs::read(&path).unwrap();
        for cut in 1..40 {
            fs::write(&path, &full[..full.len() - cut]).unwrap();
            let (_w, rec) = Wal::recover(&path).unwrap();
            assert_eq!(rec.batches.len(), 1, "cut {cut}");
            assert_eq!(rec.batches[0].ops, vec![ins("a", "p", "b")]);
            assert!(rec.truncated_bytes > 0, "cut {cut}");
        }

        // After recovery the log accepts appends and replays cleanly.
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (mut w, _rec) = Wal::recover(&path).unwrap();
        w.append_batch(&[ins("n", "p", "m")], 2).unwrap();
        drop(w);
        let (_w, rec) = Wal::recover(&path).unwrap();
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.batches[1].ops, vec![ins("n", "p", "m")]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_ops_are_dropped() {
        let path = tmp("uncommitted");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append_batch(&[ins("a", "p", "b")], 1).unwrap();
        drop(wal);
        // Append a valid op frame with no commit marker (a crash between
        // the op write and the commit write in some future coalescing).
        let mut extra = Vec::new();
        encode_op(&mut extra, &ins("ghost", "p", "x"));
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&extra);
        fs::write(&path, &bytes).unwrap();

        let (_w, rec) = Wal::recover(&path).unwrap();
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.truncated_bytes, extra.len() as u64);
        assert_eq!(
            fs::metadata(&path).unwrap().len() as usize,
            bytes.len() - extra.len()
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn midfile_corruption_is_a_typed_error() {
        let path = tmp("midfile");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append_batch(&[ins("a", "p", "b")], 1).unwrap();
        wal.append_batch(&[ins("c", "p", "d")], 2).unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the FIRST record (committed, data after it).
        let idx = WAL_HEADER_LEN as usize + 8 + 2;
        bytes[idx] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = Wal::recover(&path).err().expect("corruption must error");
        assert!(
            matches!(
                durability_error(&err),
                Some(DurabilityError::ChecksumMismatch { .. })
            ),
            "unexpected error: {err}"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rotate_resets_to_empty_header() {
        let path = tmp("rotate");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append_batch(&[ins("a", "p", "b")], 1).unwrap();
        wal.rotate(1).unwrap();
        assert_eq!(wal.base_epoch(), 1);
        wal.append_batch(&[ins("c", "p", "d")], 2).unwrap();
        drop(wal);
        let (_w, rec) = Wal::recover(&path).unwrap();
        assert_eq!(rec.base_epoch, 1);
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].ops, vec![ins("c", "p", "d")]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic");
        fs::write(&path, b"NOTAWAL!\0\0\0\0\0\0\0\0").unwrap();
        assert!(Wal::recover(&path).is_err());
        fs::remove_file(&path).unwrap();
    }
}
