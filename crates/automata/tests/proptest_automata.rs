//! Cross-validation of the three matching paths on random expressions and
//! random words: the bit-parallel Glushkov simulation (forward *and*
//! reverse), the ε-removed Thompson NFA, and the Brzozowski-derivative
//! matcher must all agree on membership.

use automata::ast::{Lit, Regex};
use automata::{derivative, BitParallel, Glushkov, Label, Nfa};
use proptest::prelude::*;

const SIGMA: Label = 6;

/// A recursive strategy for random regexes over labels `0..SIGMA`.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0..SIGMA).prop_map(Regex::label),
        Just(Regex::Epsilon),
        prop::collection::btree_set(0..SIGMA, 1..3)
            .prop_map(|s| Regex::Literal(Lit::Class(s.into_iter().collect()))),
        prop::collection::btree_set(0..SIGMA, 1..3)
            .prop_map(|s| Regex::Literal(Lit::NegClass(s.into_iter().collect()))),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::alt(a, b)),
            inner.clone().prop_map(|a| Regex::Star(Box::new(a))),
            inner.clone().prop_map(|a| Regex::Plus(Box::new(a))),
            inner.prop_map(|a| Regex::Opt(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_matchers_agree(
        e in regex_strategy(),
        words in prop::collection::vec(prop::collection::vec(0..SIGMA, 0..8), 1..12),
    ) {
        let g = Glushkov::new(&e).unwrap();
        let bp = BitParallel::new(&g);
        let nfa = Nfa::from_regex(&e);
        for w in &words {
            let expected = derivative::matches(&e, w);
            prop_assert_eq!(bp.matches(w), expected, "fwd glushkov vs derivative on {:?} for {}", w, e);
            prop_assert_eq!(bp.matches_reverse(w), expected, "rev glushkov vs derivative on {:?} for {}", w, e);
            prop_assert_eq!(nfa.matches(w), expected, "thompson vs derivative on {:?} for {}", w, e);
        }
    }

    #[test]
    fn fused_classes_preserve_language(
        e in regex_strategy(),
        words in prop::collection::vec(prop::collection::vec(0..SIGMA, 0..6), 1..10),
    ) {
        let fused = e.fuse_classes();
        prop_assert!(fused.literal_count() <= e.literal_count());
        for w in &words {
            prop_assert_eq!(
                derivative::matches(&fused, w),
                derivative::matches(&e, w),
                "fusion changed language of {} on {:?}", e, w
            );
        }
    }

    #[test]
    fn reversal_matches_reversed_words(
        e in regex_strategy(),
        words in prop::collection::vec(prop::collection::vec(0..SIGMA, 0..6), 1..10),
    ) {
        // Use the identity as "inversion" so labels stay in-alphabet: then
        // L(rev(E)) must be exactly the reversals of L(E).
        let rev = e.reversed(&|l| l);
        for w in &words {
            let mut rw = w.clone();
            rw.reverse();
            prop_assert_eq!(
                derivative::matches(&rev, &rw),
                derivative::matches(&e, w),
                "reversal broke membership of {} on {:?}", e, w
            );
        }
    }

    #[test]
    fn lazy_dfa_agrees_with_simulation(
        e in regex_strategy(),
        words in prop::collection::vec(prop::collection::vec(0..SIGMA, 0..8), 1..10),
    ) {
        let g = Glushkov::new(&e).unwrap();
        let bp = BitParallel::new(&g);
        let mut dfa = automata::LazyDfa::new(&bp);
        for w in &words {
            prop_assert_eq!(
                dfa.matches(w),
                bp.matches(w),
                "dfa vs simulation on {:?} for {}", w, e
            );
        }
        // The DFA can never materialize more states than the powerset
        // bound allows.
        prop_assert!(dfa.n_states() <= 1 << (g.positions() + 1));
    }

    #[test]
    fn nullability_consistent(e in regex_strategy()) {
        let g = Glushkov::new(&e).unwrap();
        prop_assert_eq!(g.nullable(), e.nullable());
        prop_assert_eq!(g.nullable(), derivative::matches(&e, &[]));
        let bp = BitParallel::new(&g);
        prop_assert_eq!(bp.matches(&[]), e.nullable());
    }
}
