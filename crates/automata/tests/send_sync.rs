//! `Send + Sync` audit: compiled automata are shared across server
//! workers through the plan cache (`Arc<PreparedQuery>` holds
//! `BitParallel` tables), so the whole compilation pipeline must be free
//! of interior mutability.

use automata::{BitParallel, Glushkov, Lit, Nfa, Regex};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_structures_are_send_sync() {
    assert_send_sync::<Regex>();
    assert_send_sync::<Lit>();
    assert_send_sync::<Glushkov>();
    assert_send_sync::<BitParallel>();
    assert_send_sync::<Nfa>();
}

/// One `BitParallel` referenced from many threads steps identically.
#[test]
fn bitparallel_tables_are_safely_shared() {
    let expr = Regex::concat(
        Regex::Plus(Box::new(Regex::alt(Regex::label(0), Regex::label(1)))),
        Regex::label(2),
    );
    let bp = std::sync::Arc::new(BitParallel::new(&Glushkov::new(&expr).unwrap()));
    let word = [0u64, 1, 0, 2];
    let expected = bp.matches(&word);
    assert!(expected);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let bp = std::sync::Arc::clone(&bp);
            scope.spawn(move || {
                for _ in 0..100 {
                    assert_eq!(bp.matches(&word), expected);
                    assert!(!bp.matches(&[2]));
                }
            });
        }
    });
}
