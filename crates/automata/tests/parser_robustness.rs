//! The parser must never panic: any byte soup yields `Ok` or a positioned
//! `ParseError`, and everything it accepts must re-parse from its own
//! display form to the same language.

use automata::parser::{parse, NumericResolver};
use automata::{derivative, Label};
use proptest::prelude::*;

const R: NumericResolver = NumericResolver { n_base: 16 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn never_panics_on_arbitrary_input(s in "\\PC{0,40}") {
        let _ = parse(&s, &R);
    }

    #[test]
    fn never_panics_on_operator_soup(s in "[0-9/|*+?(){}!^<>, ]{0,30}") {
        let _ = parse(&s, &R);
    }

    #[test]
    fn display_reparse_preserves_language(
        s in "[0-9]{1,2}(/[0-9]{1,2}|\\|[0-9]{1,2}|\\*|\\+|\\?){0,6}",
        words in prop::collection::vec(prop::collection::vec(0u64..16, 0..5), 1..8),
    ) {
        if let Ok(e) = parse(&s, &R) {
            let printed = format!("{e}");
            let Ok(e2) = parse(&printed, &R) else {
                return Err(TestCaseError::fail(format!("display form '{printed}' failed to re-parse")));
            };
            for w in &words {
                let w: &[Label] = w;
                prop_assert_eq!(
                    derivative::matches(&e, w),
                    derivative::matches(&e2, w),
                    "language changed through display '{}'", printed
                );
            }
        }
    }
}
