//! The parser must never panic: any byte soup yields `Ok` or a positioned
//! `ParseError`, and everything it accepts must re-parse from its own
//! display form to the same language.

use automata::ast::{Lit, Regex};
use automata::parser::{parse, NumericResolver};
use automata::{derivative, Label};
use proptest::prelude::*;

const R: NumericResolver = NumericResolver { n_base: 16 };

/// Random ε-free regex ASTs over labels `0..8` — every Display form of
/// these is supposed to be accepted by the parser (ε itself has no
/// surface syntax, so it is excluded from generation, not from nesting
/// semantics: `a?` covers the empty-word cases).
fn ast_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0u64..8).prop_map(Regex::label),
        prop::collection::btree_set(0u64..8, 1..4)
            .prop_map(|s| Regex::Literal(Lit::Class(s.into_iter().collect()))),
        prop::collection::btree_set(0u64..8, 1..4)
            .prop_map(|s| Regex::Literal(Lit::NegClass(s.into_iter().collect()))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::alt(a, b)),
            inner.clone().prop_map(|a| Regex::Star(Box::new(a))),
            inner.clone().prop_map(|a| Regex::Plus(Box::new(a))),
            inner.prop_map(|a| Regex::Opt(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn never_panics_on_arbitrary_input(s in "\\PC{0,40}") {
        let _ = parse(&s, &R);
    }

    #[test]
    fn never_panics_on_operator_soup(s in "[0-9/|*+?(){}!^<>, ]{0,30}") {
        let _ = parse(&s, &R);
    }

    /// Raw byte soup (not just printable characters): whatever survives
    /// lossy UTF-8 decoding must parse or fail cleanly, never panic.
    #[test]
    fn never_panics_on_raw_bytes(bytes in prop::collection::vec(0u8..=255, 0..48)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = parse(&s, &R);
    }

    /// Full AST → render → re-parse round-trip: every ε-free expression
    /// the workspace can build has a Display form the parser accepts,
    /// and the round-trip preserves the language (checked by the
    /// Brzozowski-derivative matcher on random words).
    #[test]
    fn ast_render_reparse_preserves_language(
        e in ast_strategy(),
        words in prop::collection::vec(prop::collection::vec(0u64..8, 0..6), 1..10),
    ) {
        let printed = format!("{e}");
        let e2 = match parse(&printed, &R) {
            Ok(e2) => e2,
            Err(err) => {
                return Err(TestCaseError::fail(format!(
                    "rendered form '{printed}' of {e:?} failed to re-parse: {err}"
                )))
            }
        };
        for w in &words {
            let w: &[Label] = w;
            prop_assert_eq!(
                derivative::matches(&e, w),
                derivative::matches(&e2, w),
                "language changed through '{}'", printed
            );
        }
    }

    #[test]
    fn display_reparse_preserves_language(
        s in "[0-9]{1,2}(/[0-9]{1,2}|\\|[0-9]{1,2}|\\*|\\+|\\?){0,6}",
        words in prop::collection::vec(prop::collection::vec(0u64..16, 0..5), 1..8),
    ) {
        if let Ok(e) = parse(&s, &R) {
            let printed = format!("{e}");
            let Ok(e2) = parse(&printed, &R) else {
                return Err(TestCaseError::fail(format!("display form '{printed}' failed to re-parse")));
            };
            for w in &words {
                let w: &[Label] = w;
                prop_assert_eq!(
                    derivative::matches(&e, w),
                    derivative::matches(&e2, w),
                    "language changed through display '{}'", printed
                );
            }
        }
    }
}
