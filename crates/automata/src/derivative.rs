//! Brzozowski-derivative matching: a third, structurally independent
//! word-matching oracle.
//!
//! Derivatives are how Nolé & Sartiani evaluate RPQs (§2 of the paper); we
//! use them purely as a test oracle: `w ∈ L(E)` iff the derivative of `E`
//! by `w` is nullable. No automaton, no bit tricks — just AST rewriting —
//! so a bug shared with the Glushkov or Thompson paths is very unlikely.

use crate::ast::{Lit, Regex};
use crate::Label;

/// The Brzozowski derivative `c⁻¹ E`: the language of suffixes completing
/// words of `L(E)` that start with `c`.
pub fn derivative(e: &Regex, c: Label) -> Regex {
    match e {
        Regex::Epsilon => empty(),
        Regex::Literal(l) => {
            if l.matches(c) {
                Regex::Epsilon
            } else {
                empty()
            }
        }
        Regex::Concat(a, b) => {
            let da_b = simplify_concat(derivative(a, c), (**b).clone());
            if a.nullable() {
                simplify_alt(da_b, derivative(b, c))
            } else {
                da_b
            }
        }
        Regex::Alt(a, b) => simplify_alt(derivative(a, c), derivative(b, c)),
        Regex::Star(a) => simplify_concat(derivative(a, c), Regex::Star(a.clone())),
        Regex::Plus(a) => simplify_concat(derivative(a, c), Regex::Star(a.clone())),
        Regex::Opt(a) => derivative(a, c),
    }
}

/// Whether `word ∈ L(e)`, by repeated derivation.
pub fn matches(e: &Regex, word: &[Label]) -> bool {
    let mut cur = e.clone();
    for &c in word {
        cur = derivative(&cur, c);
        if is_empty(&cur) {
            return false;
        }
    }
    cur.nullable()
}

/// The empty language, encoded as an unmatchable class.
fn empty() -> Regex {
    Regex::Literal(Lit::Class(Vec::new()))
}

fn is_empty(e: &Regex) -> bool {
    matches!(e, Regex::Literal(Lit::Class(v)) if v.is_empty())
}

fn simplify_concat(a: Regex, b: Regex) -> Regex {
    if is_empty(&a) || is_empty(&b) {
        return empty();
    }
    if matches!(a, Regex::Epsilon) {
        return b;
    }
    if matches!(b, Regex::Epsilon) {
        return a;
    }
    Regex::concat(a, b)
}

fn simplify_alt(a: Regex, b: Regex) -> Regex {
    if is_empty(&a) {
        return b;
    }
    if is_empty(&b) {
        return a;
    }
    Regex::alt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, NumericResolver};

    const R: NumericResolver = NumericResolver { n_base: 20 };

    fn m(s: &str, w: &[Label]) -> bool {
        matches(&parse(s, &R).unwrap(), w)
    }

    #[test]
    fn basic_words() {
        assert!(m("1/2*/2", &[1, 2]));
        assert!(m("1/2*/2", &[1, 2, 2, 2]));
        assert!(!m("1/2*/2", &[1]));
        assert!(!m("1/2*/2", &[2, 2]));
        assert!(m("1*", &[]));
        assert!(!m("1+", &[]));
        assert!(m("(1|2)+/3?", &[2, 1, 3]));
        assert!(!m("(1|2)+/3?", &[3]));
    }

    #[test]
    fn negated_class_words() {
        assert!(m("!(1)/!(2)", &[5, 5]));
        assert!(!m("!(1)/!(2)", &[1, 5]));
        assert!(!m("!(1)/!(2)", &[5, 2]));
    }

    #[test]
    fn derivative_of_star_unrolls() {
        let e = parse("1*", &R).unwrap();
        let d = derivative(&e, 1);
        assert!(d.nullable());
        assert!(matches(&d, &[1, 1]));
        assert!(!matches(&d, &[2]));
    }
}
