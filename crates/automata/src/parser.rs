//! A SPARQL-property-path-flavoured concrete syntax for regular path
//! expressions.
//!
//! Grammar (whitespace is insignificant):
//!
//! ```text
//! alt     := concat ('|' concat)*
//! concat  := postfix ('/' postfix)*
//! postfix := atom ('*' | '+' | '?')*
//! atom    := '(' alt ')'            grouping
//!          | '^' atom               inverse path (reversal over Σ↔, §3.1)
//!          | '!' '(' lbl+ ')'       negated label class  (also '!' lbl)
//!          | lbl                    edge label
//! lbl     := '^'? name              name resolved by the LabelResolver
//! name    := '<' … '>'              bracketed IRI, or
//!          | run of chars not in "/|*+?()!^ \t\r\n"
//! ```
//!
//! Unlike SPARQL's direction-split negated property sets, `!(a|^b)` here
//! denotes the complement over the *completed* alphabet `Σ↔`: any label of
//! any direction other than `a` and `b̂`. This matches the paper's framing
//! of 2RPQs as plain RPQs over `Σ↔` (§3.1).

use crate::ast::{Lit, Regex};
use crate::Label;

/// Resolves label names to ids of the completed alphabet and provides the
/// inversion involution `p ↔ p̂`.
pub trait LabelResolver {
    /// The id of `name`, or `None` if unknown.
    fn resolve(&self, name: &str) -> Option<Label>;
    /// The inverse label `p̂` (an involution).
    fn inverse(&self, label: Label) -> Label;
}

/// A resolver for label names that are decimal ids in `[0, n_base)`, with
/// inverses in `[n_base, 2·n_base)` — the ring's completed-alphabet layout.
#[derive(Clone, Copy, Debug)]
pub struct NumericResolver {
    /// Number of base (non-inverse) labels.
    pub n_base: Label,
}

impl LabelResolver for NumericResolver {
    fn resolve(&self, name: &str) -> Option<Label> {
        let id: Label = name.parse().ok()?;
        (id < 2 * self.n_base).then_some(id)
    }

    fn inverse(&self, label: Label) -> Label {
        if label < self.n_base {
            label + self.n_base
        } else {
            label - self.n_base
        }
    }
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at offset {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` into a [`Regex`], resolving label names with `resolver`.
///
/// ```
/// use automata::parser::{parse, NumericResolver};
///
/// let r = NumericResolver { n_base: 10 };
/// let e = parse("(1|2)+/^3/4{2,3}", &r).unwrap();
/// assert_eq!(e.literal_count(), 2 + 1 + 3); // alt + inverse + desugared bound
/// assert!(parse("1/(", &r).is_err());
/// ```
pub fn parse(input: &str, resolver: &impl LabelResolver) -> Result<Regex, ParseError> {
    let mut p = Parser {
        chars: input.char_indices().collect(),
        pos: 0,
        resolver,
    };
    let e = p.alt()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct Parser<'a, R> {
    chars: Vec<(usize, char)>,
    pos: usize,
    resolver: &'a R,
}

const RESERVED: &str = "/|*+?()!^{}";

impl<R: LabelResolver> Parser<'_, R> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.chars.get(self.pos).map_or_else(
                || self.chars.last().map_or(0, |&(i, c)| i + c.len_utf8()),
                |&(i, _)| i,
            ),
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut e = self.concat()?;
        while self.eat('|') {
            e = Regex::alt(e, self.concat()?);
        }
        Ok(e)
    }

    fn concat(&mut self) -> Result<Regex, ParseError> {
        let mut e = self.postfix()?;
        while self.eat('/') {
            e = Regex::concat(e, self.postfix()?);
        }
        Ok(e)
    }

    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut e = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    e = Regex::Star(Box::new(e));
                }
                Some('+') => {
                    self.pos += 1;
                    e = Regex::Plus(Box::new(e));
                }
                Some('?') => {
                    self.pos += 1;
                    e = Regex::Opt(Box::new(e));
                }
                Some('{') => {
                    self.pos += 1;
                    e = self.bounded_repeat(e)?;
                }
                _ => return Ok(e),
            }
        }
    }

    /// `{n}`, `{n,}` or `{n,m}` — bounded repetition, desugared to
    /// concatenations: `E{n,m} = E^n / (E?)^(m-n)`, `E{n,} = E^n / E*`.
    /// (SPARQL 1.1 dropped the operator late in standardisation, but
    /// engines and Cypher support it; Glushkov position counts grow
    /// linearly with `m`, so oversized bounds fail automaton construction
    /// with a typed error, not here.)
    fn bounded_repeat(&mut self, e: Regex) -> Result<Regex, ParseError> {
        let n = self.number()?;
        let (lo, hi) = if self.eat(',') {
            self.skip_ws();
            if self.peek() == Some('}') {
                (n, None)
            } else {
                (n, Some(self.number()?))
            }
        } else {
            (n, Some(n))
        };
        self.expect('}')?;
        if let Some(hi) = hi {
            if hi < lo {
                return Err(self.err(format!("bad repetition bounds {{{lo},{hi}}}")));
            }
            if hi == 0 {
                return Ok(Regex::Epsilon);
            }
        }
        const MAX_REPEAT: u32 = 64;
        if lo > MAX_REPEAT || hi.is_some_and(|h| h > MAX_REPEAT) {
            return Err(self.err(format!("repetition bound exceeds {MAX_REPEAT}")));
        }
        let mut parts: Vec<Regex> = Vec::new();
        for _ in 0..lo {
            parts.push(e.clone());
        }
        match hi {
            Some(hi) => {
                for _ in lo..hi {
                    parts.push(Regex::Opt(Box::new(e.clone())));
                }
            }
            None => parts.push(Regex::Star(Box::new(e.clone()))),
        }
        Ok(parts
            .into_iter()
            .reduce(Regex::concat)
            .unwrap_or(Regex::Epsilon))
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let mut digits = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            digits.push(self.peek().unwrap());
            self.pos += 1;
        }
        if digits.is_empty() {
            return Err(self.err("expected a number"));
        }
        digits
            .parse()
            .map_err(|_| self.err("repetition bound too large"))
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let e = self.alt()?;
                self.expect(')')?;
                Ok(e)
            }
            Some('^') => {
                self.pos += 1;
                let e = self.atom()?;
                Ok(e.reversed(&|l| self.resolver.inverse(l)))
            }
            Some('!') => {
                self.pos += 1;
                let mut excluded = Vec::new();
                if self.eat('(') {
                    loop {
                        excluded.push(self.label()?);
                        if !self.eat('|') {
                            break;
                        }
                    }
                    self.expect(')')?;
                } else {
                    excluded.push(self.label()?);
                }
                excluded.sort_unstable();
                excluded.dedup();
                Ok(Regex::Literal(Lit::NegClass(excluded)))
            }
            Some(_) => Ok(Regex::Literal(Lit::Label(self.label()?))),
            None => Err(self.err("expected an expression")),
        }
    }

    /// A possibly-inverted label name.
    fn label(&mut self) -> Result<Label, ParseError> {
        self.skip_ws();
        let inverted = self.peek() == Some('^') && {
            self.pos += 1;
            true
        };
        let name = self.name()?;
        let id = self
            .resolver
            .resolve(&name)
            .ok_or_else(|| self.err(format!("unknown label '{name}'")))?;
        Ok(if inverted {
            self.resolver.inverse(id)
        } else {
            id
        })
    }

    fn name(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if self.peek() == Some('<') {
            let start = self.pos;
            self.pos += 1;
            let mut s = String::from("<");
            loop {
                match self.peek() {
                    Some('>') => {
                        self.pos += 1;
                        s.push('>');
                        return Ok(s);
                    }
                    Some(c) => {
                        self.pos += 1;
                        s.push(c);
                    }
                    None => {
                        self.pos = start;
                        return Err(self.err("unterminated '<…>' label"));
                    }
                }
            }
        }
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_whitespace() || RESERVED.contains(c) {
                break;
            }
            s.push(c);
            self.pos += 1;
        }
        if s.is_empty() {
            Err(self.err("expected a label name"))
        } else {
            Ok(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: NumericResolver = NumericResolver { n_base: 100 };

    fn p(s: &str) -> Regex {
        parse(s, &R).unwrap()
    }

    #[test]
    fn literals_and_operators() {
        assert_eq!(p("7"), Regex::label(7));
        assert_eq!(p("1/2"), Regex::concat(Regex::label(1), Regex::label(2)));
        assert_eq!(p("1|2"), Regex::alt(Regex::label(1), Regex::label(2)));
        assert_eq!(p("3*"), Regex::Star(Box::new(Regex::label(3))));
        assert_eq!(p("3+"), Regex::Plus(Box::new(Regex::label(3))));
        assert_eq!(p("3?"), Regex::Opt(Box::new(Regex::label(3))));
    }

    #[test]
    fn precedence_alt_below_concat_below_postfix() {
        // 1|2/3* parses as 1 | (2 / (3*))
        assert_eq!(
            p("1|2/3*"),
            Regex::alt(
                Regex::label(1),
                Regex::concat(Regex::label(2), Regex::Star(Box::new(Regex::label(3)))),
            )
        );
        // (1|2)/3
        assert_eq!(
            p("(1|2)/3"),
            Regex::concat(
                Regex::alt(Regex::label(1), Regex::label(2)),
                Regex::label(3)
            )
        );
    }

    #[test]
    fn inverse_label_and_inverse_path() {
        assert_eq!(p("^5"), Regex::label(105));
        assert_eq!(p("^^5"), Regex::label(5));
        // ^(1/2) = ^2 / ^1
        assert_eq!(
            p("^(1/2)"),
            Regex::concat(Regex::label(102), Regex::label(101))
        );
    }

    #[test]
    fn negated_class() {
        assert_eq!(p("!(3|^4)"), Regex::Literal(Lit::NegClass(vec![3, 104])));
        assert_eq!(p("!9"), Regex::Literal(Lit::NegClass(vec![9])));
    }

    #[test]
    fn whitespace_and_nesting() {
        assert_eq!(p("  ( 1 | 2 ) * / 3 "), p("(1|2)*/3"));
        assert_eq!(p("((((4))))"), Regex::label(4));
    }

    #[test]
    fn paper_examples_parse() {
        // (l1|l2|l5)+ with l1=1, l2=2, l5=3.
        let e = p("(1|2|3)+");
        assert_eq!(e.literal_count(), 3);
        assert_eq!(e.fuse_classes().literal_count(), 1);
        // a*/b/c* (the "rare labels" example of §2).
        let e = p("1*/2/3*");
        assert_eq!(e.literal_count(), 3);
        assert!(!e.nullable());
    }

    #[test]
    fn bracketed_iri_names() {
        struct Iri;
        impl LabelResolver for Iri {
            fn resolve(&self, name: &str) -> Option<Label> {
                (name == "<http://example.org/knows>").then_some(7)
            }
            fn inverse(&self, l: Label) -> Label {
                l + 1000
            }
        }
        assert_eq!(
            parse("<http://example.org/knows>+", &Iri).unwrap(),
            Regex::Plus(Box::new(Regex::label(7)))
        );
    }

    #[test]
    fn bounded_repetition_desugars() {
        use crate::derivative::matches;
        // 1{2} == 1/1
        assert_eq!(p("1{2}"), Regex::concat(Regex::label(1), Regex::label(1)));
        // 1{0} and 1{0,0} are epsilon.
        assert_eq!(p("1{0}"), Regex::Epsilon);
        // Semantics of {1,3}: between one and three 1s.
        let e = p("1{1,3}");
        assert!(!matches(&e, &[]));
        assert!(matches(&e, &[1]));
        assert!(matches(&e, &[1, 1]));
        assert!(matches(&e, &[1, 1, 1]));
        assert!(!matches(&e, &[1, 1, 1, 1]));
        // {2,} is unbounded above.
        let e = p("1{2,}");
        assert!(!matches(&e, &[1]));
        assert!(matches(&e, &[1, 1]));
        assert!(matches(&e, &[1; 7]));
        // Applies to groups.
        let e = p("(1|2){0,2}");
        assert!(matches(&e, &[]));
        assert!(matches(&e, &[1, 2]));
        assert!(!matches(&e, &[1, 2, 1]));
        // Errors.
        assert!(parse("1{3,2}", &R).is_err());
        assert!(parse("1{", &R).is_err());
        assert!(parse("1{a}", &R).is_err());
        assert!(parse("1{999}", &R).is_err());
    }

    #[test]
    fn errors_carry_position() {
        let e = parse("1/", &R).unwrap_err();
        assert_eq!(e.pos, 2);
        let e = parse("1 2", &R).unwrap_err();
        assert!(e.msg.contains("trailing"));
        let e = parse("(1|2", &R).unwrap_err();
        assert!(e.msg.contains("')'"));
        let e = parse("999", &R).unwrap_err();
        assert!(e.msg.contains("unknown label"));
        assert!(parse("", &R).is_err());
    }
}
