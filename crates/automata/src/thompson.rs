//! Thompson's construction with ε-removal.
//!
//! This is the "classical algorithm" the paper contrasts Glushkov's
//! construction with (§3.2): the traditional product-graph baselines run on
//! this NFA, and the property tests use it as an independent oracle for the
//! bit-parallel simulation.

use crate::ast::{Lit, Regex};
use crate::Label;

/// An ε-free NFA with literal-labeled transitions.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Number of states; states are `0..n_states`.
    pub n_states: usize,
    /// The initial state.
    pub initial: usize,
    /// `accepting[q]` iff `q` is accepting.
    pub accepting: Vec<bool>,
    /// `transitions[q]` = outgoing `(literal, target)` edges of `q`.
    pub transitions: Vec<Vec<(Lit, usize)>>,
}

/// Thompson fragment during construction (over the ε-NFA).
struct Frag {
    start: usize,
    end: usize,
}

#[derive(Default)]
struct EpsNfa {
    /// `eps[q]` = ε-successors of `q`.
    eps: Vec<Vec<usize>>,
    /// `sym[q]` = literal-labeled successors of `q`.
    sym: Vec<Vec<(Lit, usize)>>,
}

impl EpsNfa {
    fn add_state(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.sym.push(Vec::new());
        self.eps.len() - 1
    }

    fn build(&mut self, e: &Regex) -> Frag {
        match e {
            Regex::Epsilon => {
                let s = self.add_state();
                let t = self.add_state();
                self.eps[s].push(t);
                Frag { start: s, end: t }
            }
            Regex::Literal(l) => {
                let s = self.add_state();
                let t = self.add_state();
                self.sym[s].push((l.clone(), t));
                Frag { start: s, end: t }
            }
            Regex::Concat(a, b) => {
                let fa = self.build(a);
                let fb = self.build(b);
                self.eps[fa.end].push(fb.start);
                Frag {
                    start: fa.start,
                    end: fb.end,
                }
            }
            Regex::Alt(a, b) => {
                let s = self.add_state();
                let t = self.add_state();
                let fa = self.build(a);
                let fb = self.build(b);
                self.eps[s].push(fa.start);
                self.eps[s].push(fb.start);
                self.eps[fa.end].push(t);
                self.eps[fb.end].push(t);
                Frag { start: s, end: t }
            }
            Regex::Star(a) => {
                let s = self.add_state();
                let t = self.add_state();
                let fa = self.build(a);
                self.eps[s].push(fa.start);
                self.eps[s].push(t);
                self.eps[fa.end].push(fa.start);
                self.eps[fa.end].push(t);
                Frag { start: s, end: t }
            }
            Regex::Plus(a) => {
                let fa = self.build(a);
                let t = self.add_state();
                self.eps[fa.end].push(fa.start);
                self.eps[fa.end].push(t);
                Frag {
                    start: fa.start,
                    end: t,
                }
            }
            Regex::Opt(a) => {
                let s = self.add_state();
                let t = self.add_state();
                let fa = self.build(a);
                self.eps[s].push(fa.start);
                self.eps[s].push(t);
                self.eps[fa.end].push(t);
                Frag { start: s, end: t }
            }
        }
    }

    /// ε-closure of `q`.
    fn closure(&self, q: usize) -> Vec<usize> {
        let mut seen = vec![false; self.eps.len()];
        let mut stack = vec![q];
        seen[q] = true;
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.eps[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        out
    }
}

impl Nfa {
    /// Builds the ε-free NFA for `expr` via Thompson's construction and
    /// ε-closure elimination.
    pub fn from_regex(expr: &Regex) -> Self {
        let mut eps_nfa = EpsNfa::default();
        let frag = eps_nfa.build(expr);
        let n = eps_nfa.eps.len();
        let mut accepting = vec![false; n];
        let mut transitions: Vec<Vec<(Lit, usize)>> = vec![Vec::new(); n];
        for q in 0..n {
            for c in eps_nfa.closure(q) {
                if c == frag.end {
                    accepting[q] = true;
                }
                for (lit, t) in &eps_nfa.sym[c] {
                    transitions[q].push((lit.clone(), *t));
                }
            }
        }
        Nfa {
            n_states: n,
            initial: frag.start,
            accepting,
            transitions,
        }
    }

    /// Whether the NFA accepts `word` (subset simulation; test oracle).
    pub fn matches(&self, word: &[Label]) -> bool {
        let mut current = vec![self.initial];
        let mut in_current = vec![false; self.n_states];
        in_current[self.initial] = true;
        for &c in word {
            let mut next = Vec::new();
            let mut in_next = vec![false; self.n_states];
            for &q in &current {
                for (lit, t) in &self.transitions[q] {
                    if lit.matches(c) && !in_next[*t] {
                        in_next[*t] = true;
                        next.push(*t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = next;
            in_current = in_next;
        }
        let _ = in_current;
        current.iter().any(|&q| self.accepting[q])
    }

    /// All distinct labels from `alphabet` that some transition admits
    /// (utility for the baseline engines).
    pub fn admitted_labels(&self, alphabet: &[Label]) -> Vec<Label> {
        alphabet
            .iter()
            .copied()
            .filter(|&c| {
                self.transitions
                    .iter()
                    .any(|ts| ts.iter().any(|(lit, _)| lit.matches(c)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, NumericResolver};

    const R: NumericResolver = NumericResolver { n_base: 50 };

    fn nfa(s: &str) -> Nfa {
        Nfa::from_regex(&parse(s, &R).unwrap())
    }

    #[test]
    fn literal_and_concat() {
        let n = nfa("1/2");
        assert!(n.matches(&[1, 2]));
        assert!(!n.matches(&[1]));
        assert!(!n.matches(&[2, 1]));
        assert!(!n.matches(&[]));
    }

    #[test]
    fn star_plus_opt() {
        let n = nfa("1*");
        assert!(n.matches(&[]));
        assert!(n.matches(&[1, 1, 1]));
        assert!(!n.matches(&[2]));

        let n = nfa("1+");
        assert!(!n.matches(&[]));
        assert!(n.matches(&[1]));
        assert!(n.matches(&[1, 1]));

        let n = nfa("1?");
        assert!(n.matches(&[]));
        assert!(n.matches(&[1]));
        assert!(!n.matches(&[1, 1]));
    }

    #[test]
    fn alternation_and_nesting() {
        let n = nfa("(1|2)/3*");
        assert!(n.matches(&[1]));
        assert!(n.matches(&[2, 3, 3]));
        assert!(!n.matches(&[3]));
        assert!(!n.matches(&[1, 2]));
    }

    #[test]
    fn classes_and_negation() {
        let n = Nfa::from_regex(&parse("(1|2|3)+", &R).unwrap().fuse_classes());
        assert!(n.matches(&[1, 3, 2]));
        assert!(!n.matches(&[4]));

        let n = nfa("!(1|2)");
        assert!(n.matches(&[3]));
        assert!(!n.matches(&[1]));
        assert!(!n.matches(&[2]));
        assert!(!n.matches(&[3, 3]));
    }

    #[test]
    fn epsilon_expression() {
        let n = Nfa::from_regex(&Regex::Epsilon);
        assert!(n.matches(&[]));
        assert!(!n.matches(&[1]));
    }

    use crate::ast::Regex;
}
