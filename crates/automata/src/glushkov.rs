//! Glushkov's position automaton \[22, 6\].
//!
//! The NFA has exactly `m + 1` states for a regular expression with `m`
//! literal occurrences: one state per occurrence ("position") plus the
//! initial state. Its defining regularity — every transition arriving at a
//! position carries that position's literal — is Fact 1 of the paper and
//! what makes the bit-parallel simulation (and the whole RPQ algorithm)
//! work.
//!
//! States are bits of a `u64`: bit 0 is the initial state, bits `1..=m` the
//! positions in left-to-right order of the expression.

use crate::ast::{Lit, Regex};
use crate::{AutomatonError, Label};

/// A state set of the Glushkov NFA, as a bit mask.
pub type StateMask = u64;

/// The bit of the initial state.
pub const INITIAL: StateMask = 1;

/// The Glushkov automaton of a regular expression.
#[derive(Clone, Debug)]
pub struct Glushkov {
    /// Number of positions (`m`).
    m: usize,
    /// Whether `ε ∈ L(E)`.
    nullable: bool,
    /// Positions that can start a match (`first(E)`).
    first: StateMask,
    /// Positions that can end a match (`last(E)`).
    last: StateMask,
    /// `follow[p - 1]`: positions that may follow position `p`.
    follow: Vec<StateMask>,
    /// `lits[p - 1]`: the literal of position `p` (the label test carried
    /// by every transition arriving at `p`).
    lits: Vec<Lit>,
}

impl Glushkov {
    /// Builds the automaton for `expr`.
    ///
    /// # Errors
    /// [`AutomatonError::TooManyPositions`] if `expr` has more than 63
    /// literal occurrences; [`AutomatonError::EmptyClass`] on empty classes.
    pub fn new(expr: &Regex) -> Result<Self, AutomatonError> {
        let m = expr.literal_count();
        if m > 63 {
            return Err(AutomatonError::TooManyPositions(m));
        }
        let mut g = Glushkov {
            m,
            nullable: false,
            first: 0,
            last: 0,
            follow: vec![0; m],
            lits: Vec::with_capacity(m),
        };
        let mut next_pos = 1u32;
        let info = g.visit(expr, &mut next_pos)?;
        g.nullable = info.nullable;
        g.first = info.first;
        g.last = info.last;
        Ok(g)
    }

    fn visit(&mut self, e: &Regex, next: &mut u32) -> Result<NodeInfo, AutomatonError> {
        match e {
            Regex::Epsilon => Ok(NodeInfo {
                nullable: true,
                first: 0,
                last: 0,
            }),
            Regex::Literal(lit) => {
                if lit.mentioned_labels().is_empty() && !matches!(lit, Lit::NegClass(_)) {
                    return Err(AutomatonError::EmptyClass);
                }
                let bit = 1u64 << *next;
                *next += 1;
                self.lits.push(lit.clone());
                Ok(NodeInfo {
                    nullable: false,
                    first: bit,
                    last: bit,
                })
            }
            Regex::Concat(a, b) => {
                let ia = self.visit(a, next)?;
                let ib = self.visit(b, next)?;
                self.link(ia.last, ib.first);
                Ok(NodeInfo {
                    nullable: ia.nullable && ib.nullable,
                    first: ia.first | if ia.nullable { ib.first } else { 0 },
                    last: ib.last | if ib.nullable { ia.last } else { 0 },
                })
            }
            Regex::Alt(a, b) => {
                let ia = self.visit(a, next)?;
                let ib = self.visit(b, next)?;
                Ok(NodeInfo {
                    nullable: ia.nullable || ib.nullable,
                    first: ia.first | ib.first,
                    last: ia.last | ib.last,
                })
            }
            Regex::Star(a) => {
                let ia = self.visit(a, next)?;
                self.link(ia.last, ia.first);
                Ok(NodeInfo {
                    nullable: true,
                    ..ia
                })
            }
            Regex::Plus(a) => {
                let ia = self.visit(a, next)?;
                self.link(ia.last, ia.first);
                Ok(ia)
            }
            Regex::Opt(a) => {
                let ia = self.visit(a, next)?;
                Ok(NodeInfo {
                    nullable: true,
                    ..ia
                })
            }
        }
    }

    /// Adds `firsts` to the follow set of every position in `lasts`.
    fn link(&mut self, lasts: StateMask, firsts: StateMask) {
        let mut rest = lasts;
        while rest != 0 {
            let p = rest.trailing_zeros() as usize;
            debug_assert!(p >= 1);
            self.follow[p - 1] |= firsts;
            rest &= rest - 1;
        }
    }

    /// Number of positions `m` (the NFA has `m + 1` states).
    #[inline]
    pub fn positions(&self) -> usize {
        self.m
    }

    /// Whether the automaton accepts the empty word.
    #[inline]
    pub fn nullable(&self) -> bool {
        self.nullable
    }

    /// Mask of accepting states: `last(E)`, plus the initial state when the
    /// expression is nullable.
    #[inline]
    pub fn accept_mask(&self) -> StateMask {
        self.last | if self.nullable { INITIAL } else { 0 }
    }

    /// States reachable in one step from state `q` (by whatever label their
    /// literals admit): `first(E)` for the initial state, `follow(q)`
    /// otherwise.
    #[inline]
    pub fn trans(&self, q: usize) -> StateMask {
        if q == 0 {
            self.first
        } else {
            self.follow[q - 1]
        }
    }

    /// The literal of position `p` (`1..=m`).
    #[inline]
    pub fn literal(&self, p: usize) -> &Lit {
        &self.lits[p - 1]
    }

    /// All position literals, `lits()[p-1]` belonging to position `p`.
    #[inline]
    pub fn literals(&self) -> &[Lit] {
        &self.lits
    }

    /// Mask of positions whose literal matches label `c` — the table `B[c]`
    /// of the bit-parallel simulation, computed from scratch (the
    /// [`crate::BitParallel`] wrapper caches these).
    pub fn label_mask(&self, c: Label) -> StateMask {
        let mut mask = 0;
        for (i, lit) in self.lits.iter().enumerate() {
            if lit.matches(c) {
                mask |= 1u64 << (i + 1);
            }
        }
        mask
    }

    /// Explicit transition list `(from, literal_position, to)` — used by the
    /// classical baselines and by tests. Transition `(q, p)` exists iff
    /// `p ∈ trans(q)`, and it is labeled by `literal(p)` (Fact 1).
    pub fn transitions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for q in 0..=self.m {
            let mut rest = self.trans(q);
            while rest != 0 {
                let p = rest.trailing_zeros() as usize;
                out.push((q, p));
                rest &= rest - 1;
            }
        }
        out
    }
}

#[derive(Clone, Copy)]
struct NodeInfo {
    nullable: bool,
    first: StateMask,
    last: StateMask,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, NumericResolver};

    const R: NumericResolver = NumericResolver { n_base: 50 };

    fn g(s: &str) -> Glushkov {
        Glushkov::new(&parse(s, &R).unwrap()).unwrap()
    }

    /// The paper's Fig. 2: the Glushkov automaton of `a/b*/b` (a=1, b=2)
    /// has 4 states; `B[a]` targets position 1, `B[b]` targets {2, 3},
    /// `F` = {3}, and from {0} one step reaches {1}.
    #[test]
    fn fig2_automaton_of_a_bstar_b() {
        let g = g("1/2*/2");
        assert_eq!(g.positions(), 3);
        assert!(!g.nullable());
        assert_eq!(g.label_mask(1), 0b0010); // position 1
        assert_eq!(g.label_mask(2), 0b1100); // positions 2, 3
        assert_eq!(g.accept_mask(), 0b1000); // position 3
        assert_eq!(g.trans(0), 0b0010); // initial -> {1}
        assert_eq!(g.trans(1), 0b1100); // 1 -> {2,3}
        assert_eq!(g.trans(2), 0b1100); // 2 -> {2,3}
        assert_eq!(g.trans(3), 0b0000); // 3 -> {}
    }

    /// Fig. 5: `^bus/l5*/l5` with ^bus=5, l5=3 — same shape as Fig. 2.
    #[test]
    fn fig5_automaton() {
        let g = g("5/3*/3");
        assert_eq!(g.positions(), 3);
        assert_eq!(g.label_mask(5), 0b0010);
        assert_eq!(g.label_mask(3), 0b1100);
        assert_eq!(g.label_mask(1), 0); // l1 reaches no state
        assert_eq!(g.accept_mask(), 0b1000);
    }

    #[test]
    fn nullable_adds_initial_to_accepting() {
        let g = g("4*");
        assert!(g.nullable());
        assert_eq!(g.accept_mask(), 0b10 | INITIAL);
    }

    #[test]
    fn class_literal_is_one_position() {
        let e = parse("(1|2|3)+", &R).unwrap().fuse_classes();
        let g = Glushkov::new(&e).unwrap();
        assert_eq!(g.positions(), 1);
        assert_eq!(g.label_mask(1), 0b10);
        assert_eq!(g.label_mask(2), 0b10);
        assert_eq!(g.label_mask(4), 0);
        assert_eq!(g.trans(1), 0b10); // self-loop from +
    }

    #[test]
    fn neg_class_matches_complement() {
        let g = g("!(1|2)");
        assert_eq!(g.label_mask(1), 0);
        assert_eq!(g.label_mask(2), 0);
        assert_eq!(g.label_mask(3), 0b10);
        assert_eq!(g.label_mask(49), 0b10);
    }

    #[test]
    fn too_many_positions_rejected() {
        let mut s = String::from("1");
        for _ in 0..63 {
            s.push_str("/1");
        }
        let e = parse(&s, &R).unwrap();
        assert_eq!(e.literal_count(), 64);
        assert_eq!(
            Glushkov::new(&e).unwrap_err(),
            AutomatonError::TooManyPositions(64)
        );
    }

    #[test]
    fn transitions_listing_matches_trans() {
        let g = g("1/(2|3)*");
        let ts = g.transitions();
        assert!(ts.contains(&(0, 1)));
        assert!(ts.contains(&(1, 2)));
        assert!(ts.contains(&(1, 3)));
        assert!(ts.contains(&(2, 2)));
        assert!(ts.contains(&(3, 2)));
        assert!(!ts.contains(&(0, 2)));
    }

    #[test]
    fn epsilon_expression() {
        let g = Glushkov::new(&Regex::Epsilon).unwrap();
        assert_eq!(g.positions(), 0);
        assert!(g.nullable());
        assert_eq!(g.accept_mask(), INITIAL);
    }

    use crate::ast::Regex;
}
