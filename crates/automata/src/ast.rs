//! The regular-expression AST over integer edge labels.
//!
//! Expressions follow §3.1 of the paper: `ε`, literals, concatenation
//! (`E1/E2`), disjunction (`E1|E2`), Kleene closure (`E*`), with `E+` and
//! `E?` kept as first-class nodes (they change the Glushkov position count:
//! `E+ = E*/E` would duplicate positions). Literals may be label *classes*
//! (`(a|b)` fused to one NFA position) or *negated classes* (`!(a|b)`,
//! SPARQL negated property sets); §6 of the paper points out that Glushkov
//! automata handle both without growing the NFA.

use crate::Label;

/// A literal: the label test attached to one Glushkov position.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Lit {
    /// A single edge label.
    Label(Label),
    /// Any of the listed labels (kept sorted and deduplicated).
    Class(Vec<Label>),
    /// Any label **not** in the listed set (kept sorted and deduplicated).
    NegClass(Vec<Label>),
}

impl Lit {
    /// Whether the literal matches edge label `c`.
    pub fn matches(&self, c: Label) -> bool {
        match self {
            Lit::Label(l) => *l == c,
            Lit::Class(ls) => ls.binary_search(&c).is_ok(),
            Lit::NegClass(ls) => ls.binary_search(&c).is_err(),
        }
    }

    /// Maps every label mentioned by the literal through `f` (used to build
    /// the inverse literal `^p` when reversing a two-way expression).
    pub fn map_labels(&self, f: &impl Fn(Label) -> Label) -> Lit {
        let map_sorted = |ls: &[Label]| {
            let mut v: Vec<Label> = ls.iter().map(|&l| f(l)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        match self {
            Lit::Label(l) => Lit::Label(f(*l)),
            Lit::Class(ls) => Lit::Class(map_sorted(ls)),
            Lit::NegClass(ls) => Lit::NegClass(map_sorted(ls)),
        }
    }

    /// Labels explicitly mentioned (for negated classes these are the
    /// *excluded* labels).
    pub fn mentioned_labels(&self) -> &[Label] {
        match self {
            Lit::Label(l) => std::slice::from_ref(l),
            Lit::Class(ls) | Lit::NegClass(ls) => ls,
        }
    }
}

/// A regular expression over edge labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// The empty word.
    Epsilon,
    /// One literal occurrence (one Glushkov position).
    Literal(Lit),
    /// `E1/E2`.
    Concat(Box<Regex>, Box<Regex>),
    /// `E1|E2`.
    Alt(Box<Regex>, Box<Regex>),
    /// `E*`.
    Star(Box<Regex>),
    /// `E+` (≡ `E*/E`, but with the positions of `E` used once).
    Plus(Box<Regex>),
    /// `E?` (≡ `ε|E`).
    Opt(Box<Regex>),
}

impl Regex {
    /// Convenience constructor for a single-label literal.
    pub fn label(l: Label) -> Regex {
        Regex::Literal(Lit::Label(l))
    }

    /// Convenience constructor for `E1/E2`.
    pub fn concat(a: Regex, b: Regex) -> Regex {
        Regex::Concat(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `E1|E2`.
    pub fn alt(a: Regex, b: Regex) -> Regex {
        Regex::Alt(Box::new(a), Box::new(b))
    }

    /// Number of literal occurrences (`m`, the Glushkov position count).
    pub fn literal_count(&self) -> usize {
        match self {
            Regex::Epsilon => 0,
            Regex::Literal(_) => 1,
            Regex::Concat(a, b) | Regex::Alt(a, b) => a.literal_count() + b.literal_count(),
            Regex::Star(a) | Regex::Plus(a) | Regex::Opt(a) => a.literal_count(),
        }
    }

    /// Whether `ε ∈ L(E)`.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Literal(_) => false,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
            Regex::Plus(a) => a.nullable(),
        }
    }

    /// All labels explicitly mentioned, sorted and deduplicated.
    pub fn mentioned_labels(&self) -> Vec<Label> {
        fn walk(e: &Regex, out: &mut Vec<Label>) {
            match e {
                Regex::Epsilon => {}
                Regex::Literal(l) => out.extend_from_slice(l.mentioned_labels()),
                Regex::Concat(a, b) | Regex::Alt(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Regex::Star(a) | Regex::Plus(a) | Regex::Opt(a) => walk(a, out),
            }
        }
        let mut v = Vec::new();
        walk(self, &mut v);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The reversal `Ê` of a two-way expression (§4.4): concatenations flip
    /// order and every literal is mapped through `inv` (the ring's
    /// label-inversion function `p ↔ p̂`). `rev(rev(E)) = E` whenever `inv`
    /// is an involution.
    pub fn reversed(&self, inv: &impl Fn(Label) -> Label) -> Regex {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Literal(l) => Regex::Literal(l.map_labels(inv)),
            Regex::Concat(a, b) => {
                Regex::Concat(Box::new(b.reversed(inv)), Box::new(a.reversed(inv)))
            }
            Regex::Alt(a, b) => Regex::Alt(Box::new(a.reversed(inv)), Box::new(b.reversed(inv))),
            Regex::Star(a) => Regex::Star(Box::new(a.reversed(inv))),
            Regex::Plus(a) => Regex::Plus(Box::new(a.reversed(inv))),
            Regex::Opt(a) => Regex::Opt(Box::new(a.reversed(inv))),
        }
    }

    /// Fuses alternations of plain literals into label classes, shrinking
    /// the Glushkov automaton: `(a|b|c)` becomes a single position instead
    /// of three. This is the class-literal optimization §6 highlights.
    pub fn fuse_classes(&self) -> Regex {
        match self {
            Regex::Alt(a, b) => {
                let fa = a.fuse_classes();
                let fb = b.fuse_classes();
                match (&fa, &fb) {
                    (Regex::Literal(la), Regex::Literal(lb)) => {
                        if let (Some(mut va), Some(vb)) = (positive_labels(la), positive_labels(lb))
                        {
                            va.extend(vb);
                            va.sort_unstable();
                            va.dedup();
                            return if va.len() == 1 {
                                Regex::Literal(Lit::Label(va[0]))
                            } else {
                                Regex::Literal(Lit::Class(va))
                            };
                        }
                        Regex::alt(fa, fb)
                    }
                    _ => Regex::alt(fa, fb),
                }
            }
            Regex::Concat(a, b) => Regex::concat(a.fuse_classes(), b.fuse_classes()),
            Regex::Star(a) => Regex::Star(Box::new(a.fuse_classes())),
            Regex::Plus(a) => Regex::Plus(Box::new(a.fuse_classes())),
            Regex::Opt(a) => Regex::Opt(Box::new(a.fuse_classes())),
            Regex::Epsilon | Regex::Literal(_) => self.clone(),
        }
    }
}

fn positive_labels(l: &Lit) -> Option<Vec<Label>> {
    match l {
        Lit::Label(x) => Some(vec![*x]),
        Lit::Class(xs) => Some(xs.clone()),
        Lit::NegClass(_) => None,
    }
}

impl std::fmt::Display for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn lit(l: &Lit, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match l {
                Lit::Label(x) => write!(f, "{x}"),
                Lit::Class(xs) => {
                    write!(f, "(")?;
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        write!(f, "{x}")?;
                    }
                    write!(f, ")")
                }
                Lit::NegClass(xs) => {
                    write!(f, "!(")?;
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        write!(f, "{x}")?;
                    }
                    write!(f, ")")
                }
            }
        }
        match self {
            Regex::Epsilon => write!(f, "ε"),
            Regex::Literal(l) => lit(l, f),
            Regex::Concat(a, b) => write!(f, "({a}/{b})"),
            Regex::Alt(a, b) => write!(f, "({a}|{b})"),
            Regex::Star(a) => write!(f, "{a}*"),
            Regex::Plus(a) => write!(f, "{a}+"),
            Regex::Opt(a) => write!(f, "{a}?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv2(np: Label) -> impl Fn(Label) -> Label {
        move |l| if l < np { l + np } else { l - np }
    }

    #[test]
    fn lit_matches() {
        assert!(Lit::Label(3).matches(3));
        assert!(!Lit::Label(3).matches(4));
        assert!(Lit::Class(vec![1, 3, 5]).matches(3));
        assert!(!Lit::Class(vec![1, 3, 5]).matches(2));
        assert!(Lit::NegClass(vec![1, 3]).matches(2));
        assert!(!Lit::NegClass(vec![1, 3]).matches(3));
    }

    #[test]
    fn literal_count_and_nullable() {
        // (a|b)*/c? has 3 literal positions and is nullable.
        let e = Regex::concat(
            Regex::Star(Box::new(Regex::alt(Regex::label(0), Regex::label(1)))),
            Regex::Opt(Box::new(Regex::label(2))),
        );
        assert_eq!(e.literal_count(), 3);
        assert!(e.nullable());
        // a/b* is not nullable.
        let e2 = Regex::concat(Regex::label(0), Regex::Star(Box::new(Regex::label(1))));
        assert!(!e2.nullable());
    }

    #[test]
    fn reversal_is_involution() {
        let inv = inv2(10);
        let e = Regex::concat(
            Regex::label(1),
            Regex::Plus(Box::new(Regex::alt(Regex::label(2), Regex::label(13)))),
        );
        let r = e.reversed(&inv);
        // rev(a / (b|^d)+) = (^b|d)+ / ^a
        assert_eq!(
            r,
            Regex::concat(
                Regex::Plus(Box::new(Regex::alt(Regex::label(12), Regex::label(3)))),
                Regex::label(11),
            )
        );
        assert_eq!(r.reversed(&inv), e);
    }

    #[test]
    fn fuse_classes_merges_unions() {
        let e = Regex::alt(
            Regex::label(1),
            Regex::alt(Regex::label(2), Regex::label(5)),
        );
        let fused = e.fuse_classes();
        assert_eq!(fused, Regex::Literal(Lit::Class(vec![1, 2, 5])));
        assert_eq!(fused.literal_count(), 1);
        // Negated classes are not fused.
        let e2 = Regex::alt(Regex::label(1), Regex::Literal(Lit::NegClass(vec![2])));
        assert_eq!(e2.fuse_classes().literal_count(), 2);
    }

    #[test]
    fn mentioned_labels_sorted_unique() {
        let e = Regex::concat(
            Regex::alt(Regex::label(5), Regex::label(2)),
            Regex::alt(Regex::label(5), Regex::Literal(Lit::NegClass(vec![9, 2]))),
        );
        assert_eq!(e.mentioned_labels(), vec![2, 5, 9]);
    }

    #[test]
    fn display_roundtrips_shape() {
        let e = Regex::concat(
            Regex::label(1),
            Regex::Star(Box::new(Regex::alt(Regex::label(2), Regex::label(3)))),
        );
        assert_eq!(format!("{e}"), "(1/(2|3)*)");
    }
}
