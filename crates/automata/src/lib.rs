#![warn(missing_docs)]

//! Regular expressions over graph edge labels, and their automata.
//!
//! This crate implements §3.3 of the paper (Arroyuelo et al.,
//! arXiv:2111.04556) plus the classical machinery needed by the baseline
//! engines and the test oracles:
//!
//! * [`ast`]: the regular-expression AST over integer edge labels, with
//!   two-way (inverse) literals, label classes and negated label classes
//!   (SPARQL negated property sets), and expression reversal (§3.1, §4.4).
//! * [`parser`]: a SPARQL-property-path-flavoured concrete syntax
//!   (`a/b*`, `(a|^b)+`, `!(a|b)`, `<urls>` …).
//! * [`glushkov`]: Glushkov's position automaton \[22, 6\] via
//!   nullable/first/last/follow.
//! * [`bitparallel`]: the bit-parallel simulation of Navarro & Raffinot
//!   \[42\]: word `D` of active states, table `B` of label-target masks,
//!   forward table `T` and reverse table `T'`, both split vertically into
//!   `d`-bit subtables to avoid the `O(2^m)` blow-up (§3.3).
//! * [`thompson`]: Thompson's construction with ε-removal — the NFA the
//!   classical product-graph baselines use, and a correctness oracle.
//! * [`derivative`]: a Brzozowski-derivative matcher, a second independent
//!   oracle for the property tests.

pub mod ast;
pub mod bitparallel;
pub mod derivative;
pub mod dfa;
pub mod glushkov;
pub mod parser;
pub mod thompson;

pub use ast::{Lit, Regex};
pub use bitparallel::BitParallel;
pub use dfa::LazyDfa;
pub use glushkov::Glushkov;
pub use parser::{parse, ParseError};
pub use thompson::Nfa;

/// An edge label: an id into the *completed* alphabet `Σ↔` (original
/// predicates followed by their inverses, as laid out by the ring's
/// dictionary).
pub type Label = u64;

/// Errors from automaton construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AutomatonError {
    /// The expression has more literal occurrences than fit in a machine
    /// word (bit 0 is the initial state, so at most 63 positions). The
    /// paper's Wikidata log never exceeds 16 (§5).
    TooManyPositions(usize),
    /// A label class `()` or `!()` without members.
    EmptyClass,
}

impl std::fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutomatonError::TooManyPositions(m) => write!(
                f,
                "regular expression has {m} literal occurrences; at most 63 are supported"
            ),
            AutomatonError::EmptyClass => write!(f, "empty label class"),
        }
    }
}

impl std::error::Error for AutomatonError {}
