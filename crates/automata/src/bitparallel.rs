//! Bit-parallel simulation of the Glushkov NFA (Navarro & Raffinot \[42\];
//! §3.3 of the paper).
//!
//! A state set is one machine word `D`. Reading label `c` forward updates
//! `D ← T[D] & B[c]` (Eq. 1); reading backward, `D ← T'[D & B[c]]`
//! (Eq. 2). `T` (states reachable in one step from a set) and `T'` (states
//! reaching a set in one step) are split vertically into `d`-bit subtables
//! — `T[X] = T₁[X₁] | ⋯ | T_{⌈(m+1)/d⌉}[X_{⌈(m+1)/d⌉}]` — trading a factor
//! `O(m/d)` in time for `O((m/d)·2^d)` instead of `O(2^m)` space, exactly
//! as §3.3 describes.

use crate::ast::Lit;
use crate::glushkov::{Glushkov, StateMask, INITIAL};
use crate::Label;
use std::collections::HashMap;

/// Default vertical split width for the transition tables.
pub const DEFAULT_SPLIT_WIDTH: usize = 8;

/// A transition function over state masks, split into `d`-bit subtables.
#[derive(Clone, Debug)]
pub struct SplitTable {
    /// `sub[j][x]` = image of the state subset encoded by chunk `j` holding
    /// pattern `x`.
    sub: Vec<Vec<StateMask>>,
    d: usize,
}

impl SplitTable {
    /// Builds the table for the function "OR of `f(q)` over all states `q`
    /// in the argument mask", where states are `0..=m`.
    fn build(m: usize, d: usize, f: impl Fn(usize) -> StateMask) -> Self {
        let n_states = m + 1;
        let n_chunks = n_states.div_ceil(d);
        let mut sub = Vec::with_capacity(n_chunks);
        for j in 0..n_chunks {
            let lo = j * d;
            let width = d.min(n_states - lo);
            let mut t = vec![0 as StateMask; 1 << width];
            // Dynamic-programming fill: T[x] = T[x without lowest bit] | f(lowest).
            for x in 1usize..(1 << width) {
                let low = x.trailing_zeros() as usize;
                t[x] = t[x & (x - 1)] | f(lo + low);
            }
            sub.push(t);
        }
        Self { sub, d }
    }

    /// Applies the table: the OR of the images of every state in `mask`.
    #[inline]
    pub fn apply(&self, mask: StateMask) -> StateMask {
        let mut out = 0;
        let mut rest = mask;
        let mut j = 0;
        while rest != 0 {
            let chunk = (rest & ((1u64 << self.d) - 1)) as usize;
            // Masking keeps the index valid even if a caller passes bits
            // beyond state m (well-formed masks never do).
            out |= self.sub[j][chunk & (self.sub[j].len() - 1)];
            rest >>= self.d;
            j += 1;
        }
        out
    }

    /// Table bytes (for the working-space accounting of Table 2).
    pub fn size_bytes(&self) -> usize {
        self.sub.iter().map(|t| t.len() * 8).sum()
    }
}

/// The bit-parallel simulator: cached `B` table plus split `T`/`T'`.
#[derive(Clone, Debug)]
pub struct BitParallel {
    m: usize,
    nullable: bool,
    accept: StateMask,
    fwd: SplitTable,
    bwd: SplitTable,
    /// `B[c]` for labels mentioned positively, sorted by label.
    pos_masks: Vec<(Label, StateMask)>,
    /// Negated-class positions: `(position bit, excluded labels)`.
    neg_positions: Vec<(StateMask, Vec<Label>)>,
    /// Memo for [`Self::label_mask`] lookups of negated classes.
    memo: HashMap<Label, StateMask>,
}

impl BitParallel {
    /// Builds the simulation tables with the default split width.
    pub fn new(g: &Glushkov) -> Self {
        Self::with_split_width(g, DEFAULT_SPLIT_WIDTH)
    }

    /// Builds the simulation tables splitting `T`/`T'` into `d`-bit
    /// subtables (`1 ≤ d ≤ 16` is sensible; the A3 ablation sweeps this).
    pub fn with_split_width(g: &Glushkov, d: usize) -> Self {
        assert!((1..=20).contains(&d), "split width {d} out of range");
        let m = g.positions();
        let fwd = SplitTable::build(m, d, |q| g.trans(q));
        // T'[X]: states q whose one-step image intersects X.
        let images: Vec<StateMask> = (0..=m).map(|q| g.trans(q)).collect();
        let bwd = SplitTable::build(m, d, |p| {
            // States reaching state p in one step.
            let target = 1u64 << p;
            let mut mask = 0;
            for (q, &img) in images.iter().enumerate() {
                if img & target != 0 {
                    mask |= 1u64 << q;
                }
            }
            mask
        });

        let mut pos_map: HashMap<Label, StateMask> = HashMap::new();
        let mut neg_positions = Vec::new();
        for (i, lit) in g.literals().iter().enumerate() {
            let bit = 1u64 << (i + 1);
            match lit {
                Lit::Label(l) => *pos_map.entry(*l).or_default() |= bit,
                Lit::Class(ls) => {
                    for &l in ls {
                        *pos_map.entry(l).or_default() |= bit;
                    }
                }
                Lit::NegClass(ls) => neg_positions.push((bit, ls.clone())),
            }
        }
        let mut pos_masks: Vec<(Label, StateMask)> = pos_map.into_iter().collect();
        pos_masks.sort_unstable_by_key(|&(l, _)| l);

        Self {
            m,
            nullable: g.nullable(),
            accept: g.accept_mask(),
            fwd,
            bwd,
            pos_masks,
            neg_positions,
            memo: HashMap::new(),
        }
    }

    /// Number of positions `m`.
    #[inline]
    pub fn positions(&self) -> usize {
        self.m
    }

    /// Whether the empty word is accepted.
    #[inline]
    pub fn is_nullable(&self) -> bool {
        self.nullable
    }

    /// Mask of accepting states (`F`).
    #[inline]
    pub fn accept_mask(&self) -> StateMask {
        self.accept
    }

    /// Mask of the initial state.
    #[inline]
    pub fn initial_mask(&self) -> StateMask {
        INITIAL
    }

    /// `B[c]`: positions reachable by an edge labeled `c` from any state.
    pub fn label_mask(&self, c: Label) -> StateMask {
        let mut mask = match self.pos_masks.binary_search_by_key(&c, |&(l, _)| l) {
            Ok(i) => self.pos_masks[i].1,
            Err(_) => 0,
        };
        for (bit, excluded) in &self.neg_positions {
            if excluded.binary_search(&c).is_err() {
                mask |= bit;
            }
        }
        mask
    }

    /// Like [`Self::label_mask`] but memoized (useful when negated classes
    /// make the computation non-trivial and the traversal re-tests labels).
    pub fn label_mask_memo(&mut self, c: Label) -> StateMask {
        if self.neg_positions.is_empty() {
            return self.label_mask(c);
        }
        if let Some(&m) = self.memo.get(&c) {
            return m;
        }
        let m = self.label_mask(c);
        self.memo.insert(c, m);
        m
    }

    /// OR of `B[c]` over all labels `c ∈ [lo, hi)` — the mask `B[v]` of a
    /// wavelet-tree node covering that label interval (§4.1).
    pub fn range_mask(&self, lo: Label, hi: Label) -> StateMask {
        let start = self.pos_masks.partition_point(|&(l, _)| l < lo);
        let mut mask = 0;
        for &(l, m) in &self.pos_masks[start..] {
            if l >= hi {
                break;
            }
            mask |= m;
        }
        for (bit, excluded) in &self.neg_positions {
            // The node qualifies unless every label in [lo, hi) is excluded.
            let from = excluded.partition_point(|&l| l < lo);
            let to = excluded.partition_point(|&l| l < hi);
            if ((to - from) as u64) < hi - lo {
                mask |= bit;
            }
        }
        mask
    }

    /// Positive-literal masks, sorted by label (for seeding per-node mask
    /// tables bottom-up as §4.1 prescribes).
    pub fn positive_label_masks(&self) -> &[(Label, StateMask)] {
        &self.pos_masks
    }

    /// Negated-class positions `(bit, excluded labels)`.
    pub fn negated_positions(&self) -> &[(StateMask, Vec<Label>)] {
        &self.neg_positions
    }

    /// One forward step (Eq. 1): `T[D] & B[c]`.
    #[inline]
    pub fn step_fwd(&self, d: StateMask, c: Label) -> StateMask {
        self.fwd.apply(d) & self.label_mask(c)
    }

    /// One backward step (Eq. 2): `T'[D & B[c]]`.
    #[inline]
    pub fn step_bwd(&self, d: StateMask, c: Label) -> StateMask {
        self.bwd.apply(d & self.label_mask(c))
    }

    /// `T'[X]` for a pre-intersected argument (the engine intersects with
    /// `B[p]` during the wavelet traversal, per Fact 1).
    #[inline]
    pub fn apply_bwd(&self, x: StateMask) -> StateMask {
        self.bwd.apply(x)
    }

    /// `T[X]` without the `B` intersection.
    #[inline]
    pub fn apply_fwd(&self, x: StateMask) -> StateMask {
        self.fwd.apply(x)
    }

    /// Forward word matching: simulates §3.3's algorithm.
    pub fn matches(&self, word: &[Label]) -> bool {
        let mut d = INITIAL;
        for &c in word {
            d = self.step_fwd(d, c);
            if d == 0 {
                return false;
            }
        }
        d & self.accept != 0
    }

    /// Backward word matching: reads `word` from last to first with Eq. 2
    /// and accepts when the initial state survives. Agrees with
    /// [`Self::matches`] on every word.
    pub fn matches_reverse(&self, word: &[Label]) -> bool {
        let mut d = self.accept;
        for &c in word.iter().rev() {
            d = self.step_bwd(d, c);
            if d == 0 {
                return false;
            }
        }
        d & INITIAL != 0
    }

    /// Working-space bytes of the tables (Table 2 accounting).
    pub fn size_bytes(&self) -> usize {
        self.fwd.size_bytes()
            + self.bwd.size_bytes()
            + self.pos_masks.len() * 16
            + self
                .neg_positions
                .iter()
                .map(|(_, v)| 8 + v.len() * 8)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, NumericResolver};

    const R: NumericResolver = NumericResolver { n_base: 50 };

    fn bp(s: &str) -> BitParallel {
        BitParallel::new(&Glushkov::new(&parse(s, &R).unwrap()).unwrap())
    }

    /// The worked simulation of §3.3: running `a/b*/b` (a=1, b=2) over the
    /// string "abba", with accepting configurations after reading "ab" and
    /// "abb".
    #[test]
    fn fig2_forward_trace() {
        let bp = bp("1/2*/2");
        let mut d = INITIAL;
        d = bp.step_fwd(d, 1);
        assert_eq!(d, 0b0010); // state 1 active
        d = bp.step_fwd(d, 2);
        assert_eq!(d, 0b1100); // states 2,3 active
        assert!(d & bp.accept_mask() != 0); // "ab" accepted
        d = bp.step_fwd(d, 2);
        assert_eq!(d, 0b1100); // still 2,3
        assert!(d & bp.accept_mask() != 0); // "abb" accepted
        d = bp.step_fwd(d, 1);
        assert_eq!(d, 0); // out of active states
    }

    /// The reverse table `T'` of Fig. 5: `T'[0001] = 0110` in the paper's
    /// MSB-initial notation becomes: predecessors of position 3 are
    /// positions {1, 2}.
    #[test]
    fn fig5_reverse_table() {
        let bp = bp("5/3*/3");
        // D = F = {3}; reading l5 backward: T'[F & B[3]] = predecessors of 3.
        let d = bp.step_bwd(bp.accept_mask(), 3);
        assert_eq!(d, 0b0110); // states 1 and 2
                               // Reading ^bus (=5) backward from {1}: predecessor is the initial state.
        let d2 = bp.step_bwd(0b0010, 5);
        assert_eq!(d2, INITIAL);
    }

    #[test]
    fn forward_and_reverse_agree() {
        let bp = bp("1/(2|3)*/4?");
        let words: &[&[Label]] = &[
            &[1],
            &[1, 4],
            &[1, 2, 3, 2],
            &[1, 2, 3, 4],
            &[2],
            &[],
            &[1, 4, 4],
            &[4],
        ];
        for w in words {
            assert_eq!(
                bp.matches(w),
                bp.matches_reverse(w),
                "disagreement on {w:?}"
            );
        }
    }

    #[test]
    fn split_widths_agree() {
        let g = Glushkov::new(&parse("(1|2)+/3*/(4/5)?", &R).unwrap()).unwrap();
        let reference = BitParallel::with_split_width(&g, 16);
        for d in [1, 2, 4, 7, 8] {
            let bp = BitParallel::with_split_width(&g, d);
            for mask in 0..(1u64 << (g.positions() + 1)) {
                assert_eq!(
                    bp.apply_fwd(mask),
                    reference.apply_fwd(mask),
                    "fwd d={d} mask={mask:b}"
                );
                assert_eq!(
                    bp.apply_bwd(mask),
                    reference.apply_bwd(mask),
                    "bwd d={d} mask={mask:b}"
                );
            }
        }
    }

    #[test]
    fn range_mask_ors_labels() {
        let bp = bp("1/(3|7)");
        assert_eq!(
            bp.range_mask(0, 50),
            bp.label_mask(1) | bp.label_mask(3) | bp.label_mask(7)
        );
        assert_eq!(bp.range_mask(2, 4), bp.label_mask(3));
        assert_eq!(bp.range_mask(4, 7), 0);
        assert_eq!(bp.range_mask(7, 8), bp.label_mask(7));
    }

    #[test]
    fn range_mask_with_negated_class() {
        let bp = bp("!(3|4)");
        let bit = 0b10;
        assert_eq!(bp.label_mask(3), 0);
        assert_eq!(bp.label_mask(5), bit);
        // [3,5) is fully excluded; [3,6) is not.
        assert_eq!(bp.range_mask(3, 5), 0);
        assert_eq!(bp.range_mask(3, 6), bit);
        assert_eq!(bp.range_mask(0, 100), bit);
    }

    #[test]
    fn empty_word_only_when_nullable() {
        assert!(!bp("1").matches(&[]));
        assert!(bp("1*").matches(&[]));
        assert!(bp("1*").matches_reverse(&[]));
        assert!(bp("1?").matches(&[]));
    }

    #[test]
    fn memoized_label_mask_matches() {
        let mut bp = bp("!(2)/1");
        for c in 0..10 {
            assert_eq!(bp.label_mask_memo(c), bp.label_mask(c));
            // Second lookup hits the memo.
            assert_eq!(bp.label_mask_memo(c), bp.label_mask(c));
        }
    }
}
