//! A lazily-determinized DFA over the bit-parallel Glushkov tables.
//!
//! §3.3 notes that each configuration of the bit-parallel word `D`
//! "corresponds to a state in the DFA according to the classic powerset
//! construction" — this module materializes exactly that correspondence,
//! caching one DFA state per distinct mask and one transition per
//! (state, label) pair on first use. The classical space/time trade-off:
//! `O(2^m σ)` worst-case space, amortized *O*(1) per input symbol once
//! warm, versus the simulation's `O(m/d)` table lookups per symbol.
//!
//! The RPQ engine does not use this (Fact 1's regularity is what it
//! exploits); the DFA serves the string-matching comparison and as yet
//! another oracle in the property tests.

use crate::bitparallel::BitParallel;
use crate::glushkov::{StateMask, INITIAL};
use crate::Label;
use std::collections::HashMap;

/// Dense DFA state id.
pub type DfaState = u32;

/// A lazily-built DFA equivalent to the Glushkov NFA.
pub struct LazyDfa<'a> {
    bp: &'a BitParallel,
    /// Mask of each materialized state.
    masks: Vec<StateMask>,
    /// Mask → state id.
    ids: HashMap<StateMask, DfaState>,
    /// Cached transitions `(state, label) → state`.
    trans: HashMap<(DfaState, Label), DfaState>,
}

impl<'a> LazyDfa<'a> {
    /// Creates the DFA with only the initial state materialized.
    pub fn new(bp: &'a BitParallel) -> Self {
        let mut dfa = Self {
            bp,
            masks: Vec::new(),
            ids: HashMap::new(),
            trans: HashMap::new(),
        };
        dfa.intern(INITIAL);
        dfa
    }

    fn intern(&mut self, mask: StateMask) -> DfaState {
        if let Some(&id) = self.ids.get(&mask) {
            return id;
        }
        let id = self.masks.len() as DfaState;
        self.masks.push(mask);
        self.ids.insert(mask, id);
        id
    }

    /// The initial state.
    pub fn start(&self) -> DfaState {
        0
    }

    /// Number of DFA states materialized so far.
    pub fn n_states(&self) -> usize {
        self.masks.len()
    }

    /// Number of transitions cached so far.
    pub fn n_cached_transitions(&self) -> usize {
        self.trans.len()
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: DfaState) -> bool {
        self.masks[state as usize] & self.bp.accept_mask() != 0
    }

    /// Whether `state` is the dead state (no live NFA states).
    pub fn is_dead(&self, state: DfaState) -> bool {
        self.masks[state as usize] == 0
    }

    /// The NFA state mask behind a DFA state.
    pub fn mask_of(&self, state: DfaState) -> StateMask {
        self.masks[state as usize]
    }

    /// One DFA step, determinizing on demand.
    pub fn step(&mut self, state: DfaState, label: Label) -> DfaState {
        if let Some(&t) = self.trans.get(&(state, label)) {
            return t;
        }
        let next_mask = self.bp.step_fwd(self.masks[state as usize], label);
        let next = self.intern(next_mask);
        self.trans.insert((state, label), next);
        next
    }

    /// Whether the DFA accepts `word`.
    pub fn matches(&mut self, word: &[Label]) -> bool {
        let mut s = self.start();
        for &c in word {
            s = self.step(s, c);
            if self.is_dead(s) {
                return false;
            }
        }
        self.is_accepting(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::Glushkov;
    use crate::parser::{parse, NumericResolver};

    const R: NumericResolver = NumericResolver { n_base: 20 };

    fn dfa_for(s: &str) -> (BitParallel, Vec<Vec<Label>>) {
        let e = parse(s, &R).unwrap();
        let bp = BitParallel::new(&Glushkov::new(&e).unwrap());
        let words: Vec<Vec<Label>> = vec![
            vec![],
            vec![1],
            vec![1, 2],
            vec![1, 2, 2],
            vec![2, 1],
            vec![1, 2, 2, 2, 1],
            vec![3],
            vec![1, 3],
        ];
        (bp, words)
    }

    #[test]
    fn dfa_agrees_with_simulation() {
        for expr in ["1/2*/2", "(1|2)+", "1?/2/3*", "!(1)/2"] {
            let (bp, words) = dfa_for(expr);
            let mut dfa = LazyDfa::new(&bp);
            for w in &words {
                assert_eq!(dfa.matches(w), bp.matches(w), "expr {expr} word {w:?}");
            }
        }
    }

    #[test]
    fn determinization_is_lazy_and_cached() {
        let (bp, _) = dfa_for("1/2*/2");
        let mut dfa = LazyDfa::new(&bp);
        assert_eq!(dfa.n_states(), 1);
        assert!(dfa.matches(&[1, 2]));
        let after_first = dfa.n_states();
        assert!(after_first >= 3);
        let cached = dfa.n_cached_transitions();
        // Re-running the same word adds nothing.
        assert!(dfa.matches(&[1, 2]));
        assert_eq!(dfa.n_states(), after_first);
        assert_eq!(dfa.n_cached_transitions(), cached);
    }

    #[test]
    fn dead_state_is_sticky() {
        let (bp, _) = dfa_for("1/2");
        let mut dfa = LazyDfa::new(&bp);
        let s = dfa.start();
        let s = dfa.step(s, 9);
        assert!(dfa.is_dead(s));
        let s2 = dfa.step(s, 1);
        assert!(dfa.is_dead(s2));
    }
}
