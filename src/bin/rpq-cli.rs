//! `rpq-cli` — build, persist, query and *serve* ring-rpq databases.
//!
//! ```text
//! rpq-cli build <graph.txt|graph.nt> <index.db>  index a graph file
//!   (--shards n writes a sharded index directory instead)
//! rpq-cli query <index.db> <s> <expr> <o>      run one 2RPQ (use ?vars)
//! rpq-cli serve <index.db> [opts]              query service on stdin
//! rpq-cli batch <index.db> <queries> [opts]    run a query file via the service
//! rpq-cli stats <index.db>                     index statistics
//! rpq-cli bench <index.db> <s> <expr> <o> [n]  time a query n times
//! ```
//!
//! Examples:
//!
//! ```text
//! rpq-cli build metro.txt metro.db
//! rpq-cli query metro.db baquedano 'l5+/bus' '?y'
//! echo 'baquedano l5+/bus ?y' | rpq-cli serve metro.db --workers 4
//! rpq-cli batch metro.db queries.txt --metrics metrics.json
//! ```
//!
//! Exit codes: 0 success, 1 operational error, 2 malformed query
//! (pattern parse error or unknown node) — typed, no backtrace.

use ring_rpq::ring::mapped::OpenMode;
use ring_rpq::rpq_server::{RpqError, RpqServer, ServerConfig};
use ring_rpq::{DbError, RpqDatabase, UpdatableDatabase};
use rpq_core::EngineOptions;
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    // Fault injection for crash-consistency CI: `RPQ_IO_FAULTS` (e.g.
    // `write:3` or `fsync:0,rename:0`) arms the durable IO layer so a
    // save dies at the Nth operation exactly like a crash would.
    match ring_rpq::ring::durable::IoPolicy::from_env() {
        Ok(Some(policy)) => {
            ring_rpq::ring::durable::arm(policy);
            eprintln!("fault injection armed: RPQ_IO_FAULTS={policy:?}");
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("insert") => cmd_update(&args[1..], true),
        Some("delete") => cmd_update(&args[1..], false),
        Some("compact") => cmd_compact(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(CliError::Other(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Parse(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Other(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  rpq-cli build <graph.txt|graph.nt> <index.db>  index a graph file
  rpq-cli insert <index.db> <delta.txt|.nt>      commit a batch of triple inserts
  rpq-cli delete <index.db> <delta.txt|.nt>      commit a batch of triple deletes
  rpq-cli compact <index.db>                     fold the delta overlay into the ring
  rpq-cli query <index.db> <s> <expr> <o>        run one 2RPQ (use ?vars)
  rpq-cli explain <index.db> <s> <expr> <o>      show the evaluation plan (human-readable)
  rpq-cli serve <index.db> [opts]                query service: one 's expr o' per stdin line
  rpq-cli batch <index.db> <queries.txt> [opts]  run a query file through the service
  rpq-cli stats <index.db>                       index statistics
  rpq-cli verify <index.db>                      deep-check an index: header, checksums,
                                                 cross-component consistency, WAL tail;
                                                 prints a one-line JSON report and exits
                                                 0 (healthy) or 2 (corrupt); works on
                                                 sharded index directories too
  rpq-cli bench <index.db> <s> <expr> <o> [n]    time a query n times
build options:
  --mmap           write the aligned RRPQM01 format: the file is usable
                   in place, so later opens map it zero-copy instead of
                   deserializing (default: the RRPQDB02 stream format)
  --shards <n>     write a horizontally sharded index instead: <index.db>
                   becomes a directory of n mappable RRPQM01 shard files
                   plus a checksummed manifest; query/serve/batch/stats
                   open it transparently and answers are bit-identical
                   to the unsharded index
query/serve/batch/stats/bench options:
  --mmap | --heap  for RRPQM01 index files, require a kernel mapping /
                   force an aligned heap read (default: map when the
                   platform supports it); stream-format files always
                   load to the heap
query/batch options:
  --explain        print the planner's chosen plan (route, direction,
                   split label, cost estimate) as stable JSON, one object
                   per query, without evaluating anything
query/serve/batch options:
  --threads <n>    threads a single query may fan its frontier across
                   (default 1; answers are identical at any value)
  --profile        collect an execution profile (per-phase timings,
                   per-level frontier sizes, compaction and cache
                   counters; answers are bit-identical either way).
                   `query` prints it as a final JSON line; serve/batch
                   print '# profile: {json}' per answer
serve/batch options:
  --workers <n>    worker threads (default: available parallelism)
  --metrics <file> write the metrics registry JSON there ('-' = stderr)
  --slow-log <n>   keep the n worst queries (with profiles) in the
                   slow-query log (default 0 = disabled)
  --slow-ms <t>    slow-log admission threshold, milliseconds (default 100)
serve session meta-commands (one per stdin line, answers flush first):
  .metrics         print the metrics registry JSON
  .prometheus      print the registry in Prometheus text format
  .slow            print the slow-query log JSON
  .drain           graceful stop: reject new queries, finish in-flight
                   ones, checkpoint durable state, print a JSON report,
                   and end the session
";

/// CLI failures, split by exit code: malformed queries (pattern parse
/// errors, unknown nodes) exit 2; everything else exits 1.
enum CliError {
    Parse(String),
    Other(String),
}

impl From<DbError> for CliError {
    fn from(e: DbError) -> Self {
        match e {
            DbError::Parse(_) | DbError::UnknownNode(_) => CliError::Parse(e.to_string()),
            other => CliError::Other(other.to_string()),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Other(m)
    }
}

fn cmd_build(args: &[String]) -> Result<(), CliError> {
    let (mmap, rest) = split_flag(args, "--mmap");
    let (shards, rest) = split_uint_flag(&rest, "--shards")?;
    let [input, output] = &rest[..] else {
        return Err(format!(
            "build needs <graph.txt|graph.nt> <index.db> [--mmap] [--shards n]\n{USAGE}"
        )
        .into());
    };
    if shards == Some(0) {
        return Err("--shards must be at least 1".to_string().into());
    }
    let t = Instant::now();
    let db = RpqDatabase::from_graph_file(Path::new(input)).map_err(|e| e.to_string())?;
    let build_secs = t.elapsed().as_secs_f64();
    println!(
        "indexed {} edges, {} nodes, {} predicates in {:.2}s",
        db.graph().len(),
        db.graph().n_nodes(),
        db.graph().n_preds(),
        build_secs
    );
    if let Some(n) = shards {
        // A sharded index is a directory: one mappable RRPQM01 file per
        // shard, bound by a checksummed RRPQSH01 manifest.
        let bytes = db
            .save_sharded(Path::new(output), n)
            .map_err(|e| format!("writing {output}: {e}"))?;
        println!(
            "ring: {} bytes ({:.2} bytes/edge) -> {}/ (RRPQSH01, {n} shards, mappable)",
            bytes,
            bytes as f64 / db.graph().len().max(1) as f64,
            output,
        );
        return Ok(());
    }
    if mmap {
        db.save_mapped(Path::new(output))
            .map_err(|e| format!("writing {output}: {e}"))?;
    } else {
        db.save(Path::new(output))
            .map_err(|e| format!("writing {output}: {e}"))?;
    }
    println!(
        "ring: {} bytes ({:.2} bytes/edge) -> {} ({})",
        db.ring().size_bytes(),
        db.ring().size_bytes() as f64 / db.graph().len().max(1) as f64,
        output,
        if mmap {
            "RRPQM01, mappable"
        } else {
            "RRPQDB02"
        }
    );
    Ok(())
}

/// Strips `--mmap` / `--heap` from an argument list into an [`OpenMode`].
fn split_residency(args: &[String]) -> Result<(OpenMode, Vec<String>), CliError> {
    let (mmap, rest) = split_flag(args, "--mmap");
    let (heap, rest) = split_flag(&rest, "--heap");
    if mmap && heap {
        return Err("--mmap and --heap are mutually exclusive"
            .to_string()
            .into());
    }
    let mode = if mmap {
        OpenMode::Mmap
    } else if heap {
        OpenMode::Heap
    } else {
        OpenMode::Auto
    };
    Ok((mode, rest))
}

fn load_as(path: &str, mode: OpenMode) -> Result<RpqDatabase, CliError> {
    // `open` dispatches on the magic (RRPQM01 is mapped in place,
    // RRPQDB01 deserializes); updatable files (those carrying a delta
    // overlay) load too: the overlay is folded in memory; the file
    // itself is left as-is.
    match RpqDatabase::open_with(Path::new(path), mode) {
        Ok(db) => Ok(db),
        Err(first) => match UpdatableDatabase::load(Path::new(path)) {
            Ok(db) => Ok(db.into_database()),
            Err(_) => Err(CliError::Other(format!("loading {path}: {first}"))),
        },
    }
}

fn load(path: &str) -> Result<RpqDatabase, CliError> {
    load_as(path, OpenMode::Auto)
}

fn load_updatable(path: &str) -> Result<UpdatableDatabase, CliError> {
    // A mapped index is immutable on disk; promote it to an in-memory
    // updatable database (dictionaries go to the heap on first intern).
    if ring_rpq::ring::mapped::is_mapped_file(Path::new(path)) {
        return RpqDatabase::open(Path::new(path))
            .map(RpqDatabase::into_updatable)
            .map_err(|e| CliError::Other(format!("loading {path}: {e}")));
    }
    // Stream-format indexes open durably: orphaned temp files from an
    // interrupted save are cleaned up, the `<path>.wal` log is recovered
    // (replaying commits a crash kept from reaching the snapshot), and
    // subsequent commits are write-ahead logged.
    UpdatableDatabase::open_durable(Path::new(path))
        .map_err(|e| CliError::Other(format!("loading {path}: {e}")))
}

/// `insert`/`delete`: apply a delta file to a persisted database in one
/// committed batch, auto-compacting on the size-ratio trigger, and save
/// the result back.
fn cmd_update(args: &[String], is_insert: bool) -> Result<(), CliError> {
    let verb = if is_insert { "insert" } else { "delete" };
    let [index, delta_file] = args else {
        return Err(format!("{verb} needs <index.db> <delta.txt|.nt>\n{USAGE}").into());
    };
    let db = load_updatable(index)?;
    let text = std::fs::read_to_string(delta_file)
        .map_err(|e| CliError::Other(format!("reading {delta_file}: {e}")))?;
    let nt = Path::new(delta_file)
        .extension()
        .is_some_and(|x| x.eq_ignore_ascii_case("nt"));
    let n = match (nt, is_insert) {
        (true, true) => db.insert_ntriples(&text),
        (true, false) => db.delete_ntriples(&text),
        (false, true) => db.insert_text(&text),
        (false, false) => db.delete_text(&text),
    }
    .map_err(|e| CliError::Other(e.to_string()))?;
    let epoch = db.commit();
    let stats = db.stats();
    if ring_rpq::ring::mapped::is_mapped_file(Path::new(index)) {
        // Keep a mapped index mapped: fold the delta and rewrite the
        // RRPQM01 file in place.
        db.into_database()
            .save_mapped(Path::new(index))
            .map_err(|e| format!("writing {index}: {e}"))?;
    } else {
        db.save(Path::new(index))
            .map_err(|e| format!("writing {index}: {e}"))?;
    }
    println!(
        "{verb}: {n} triples committed at epoch {epoch} (delta: +{} -{}; compactions: {})",
        stats.delta_adds, stats.delta_deletes, stats.compactions
    );
    Ok(())
}

/// `compact`: rebuild the ring from ring + delta and persist the result
/// (the file returns to the immutable format).
fn cmd_compact(args: &[String]) -> Result<(), CliError> {
    let [index] = args else {
        return Err(format!("compact needs <index.db>\n{USAGE}").into());
    };
    let db = load_updatable(index)?;
    let before = db.stats();
    let t = Instant::now();
    let epoch = db.compact();
    let secs = t.elapsed().as_secs_f64();
    if ring_rpq::ring::mapped::is_mapped_file(Path::new(index)) {
        db.into_database()
            .save_mapped(Path::new(index))
            .map_err(|e| format!("writing {index}: {e}"))?;
    } else {
        db.save(Path::new(index))
            .map_err(|e| format!("writing {index}: {e}"))?;
    }
    println!(
        "compacted {} adds and {} deletes into the ring in {secs:.2}s (epoch {epoch})",
        before.delta_adds, before.delta_deletes
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let (explain_only, rest): (bool, Vec<String>) = split_flag(args, "--explain");
    let (profile, rest) = split_flag(&rest, "--profile");
    let (threads, rest) = split_threads_flag(&rest)?;
    let (mode, rest) = split_residency(&rest)?;
    let [index, s, expr, o] = &rest[..] else {
        return Err(format!(
            "query needs <index.db> <s> <expr> <o> [--explain] [--profile] [--threads n] [--mmap|--heap]\n{USAGE}"
        )
        .into());
    };
    let db = load_as(index, mode)?;
    if explain_only {
        let plan = db.explain_plan(s, expr, o)?;
        println!("{}", plan.to_json());
        return Ok(());
    }
    let opts = EngineOptions {
        timeout: Some(Duration::from_secs(60)),
        intra_query_threads: threads.unwrap_or(1).max(1),
        profile,
        ..EngineOptions::default()
    };
    let t = Instant::now();
    let out = db.query_with(s, expr, o, &opts)?;
    let secs = t.elapsed().as_secs_f64();
    let mut named: Vec<(String, String)> = out
        .pairs
        .iter()
        .map(|&(a, b)| {
            (
                db.nodes().name(a).to_string(),
                db.nodes().name(b).to_string(),
            )
        })
        .collect();
    // Deterministic output: sorted, distinct rows (stable across engines
    // and thread counts, so cross-engine diffs are byte-identical).
    named.sort();
    named.dedup();
    for (a, b) in &named {
        println!("{a}\t{b}");
    }
    let batching = if out.stats.rank_ops_saved > 0 {
        format!(
            " (rank ops {} + {} saved by batching)",
            out.stats.rank_ops, out.stats.rank_ops_saved
        )
    } else {
        String::new()
    };
    eprintln!(
        "{} pairs in {:.4}s{}{}{}",
        named.len(),
        secs,
        if out.truncated { " (limit hit)" } else { "" },
        if out.timed_out { " (timed out)" } else { "" },
        batching,
    );
    // The profile is the final stdout line (a lone JSON object), so
    // scripts can split rows from profile with a '^{' match.
    if let Some(p) = &out.profile {
        println!("{}", p.to_json());
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    let [index, s, expr, o] = args else {
        return Err(format!("explain needs <index.db> <s> <expr> <o>\n{USAGE}").into());
    };
    let db = load(index)?;
    let q = db.parse_query(s, expr, o)?;
    let plan = rpq_core::explain::explain(db.ring(), &q).map_err(|e| e.to_string())?;
    print!("{plan}");
    Ok(())
}

/// Strips a boolean flag from an argument list, reporting whether it was
/// present.
fn split_flag(args: &[String], flag: &str) -> (bool, Vec<String>) {
    let rest: Vec<String> = args.iter().filter(|a| *a != flag).cloned().collect();
    (rest.len() != args.len(), rest)
}

/// Extracts `--threads <n>` from an argument list, returning it and the
/// remaining arguments.
fn split_threads_flag(args: &[String]) -> Result<(Option<usize>, Vec<String>), CliError> {
    split_uint_flag(args, "--threads")
}

/// Extracts a `<flag> <n>` pair from an argument list, returning the
/// parsed value (if present) and the remaining arguments.
fn split_uint_flag(args: &[String], flag: &str) -> Result<(Option<usize>, Vec<String>), CliError> {
    let mut value = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            value = Some(v.parse().map_err(|_| format!("bad {flag} value '{v}'"))?);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((value, rest))
}

/// Options shared by `serve` and `batch`.
struct ServeOpts {
    positional: Vec<String>,
    workers: Option<usize>,
    threads: Option<usize>,
    metrics: Option<String>,
    explain: bool,
    profile: bool,
    slow_log: Option<usize>,
    slow_ms: Option<u64>,
    mode: OpenMode,
}

fn parse_serve_opts(args: &[String]) -> Result<ServeOpts, CliError> {
    let (mode, args) = split_residency(args)?;
    let mut opts = ServeOpts {
        positional: Vec::new(),
        workers: None,
        threads: None,
        metrics: None,
        explain: false,
        profile: false,
        slow_log: None,
        slow_ms: None,
        mode,
    };
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> Result<String, CliError> {
        it.next()
            .cloned()
            .ok_or_else(|| CliError::Other(format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => opts.explain = true,
            "--profile" => opts.profile = true,
            "--workers" => {
                let v = value("--workers", &mut it)?;
                opts.workers = Some(
                    v.parse()
                        .map_err(|_| format!("bad --workers value '{v}'"))?,
                );
            }
            "--threads" => {
                let v = value("--threads", &mut it)?;
                opts.threads = Some(
                    v.parse()
                        .map_err(|_| format!("bad --threads value '{v}'"))?,
                );
            }
            "--slow-log" => {
                let v = value("--slow-log", &mut it)?;
                opts.slow_log = Some(
                    v.parse()
                        .map_err(|_| format!("bad --slow-log value '{v}'"))?,
                );
            }
            "--slow-ms" => {
                let v = value("--slow-ms", &mut it)?;
                opts.slow_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --slow-ms value '{v}'"))?,
                );
            }
            "--metrics" => {
                opts.metrics = Some(value("--metrics", &mut it)?);
            }
            _ => opts.positional.push(a.clone()),
        }
    }
    Ok(opts)
}

fn start_server(index: &str, opts: &ServeOpts) -> Result<RpqServer, CliError> {
    let db = load_as(index, opts.mode)?;
    let mut config = ServerConfig::default();
    if let Some(w) = opts.workers {
        config.workers = w.max(1);
    }
    if let Some(t) = opts.threads {
        config.intra_query_threads = t.max(1);
    }
    config.profile = opts.profile;
    if let Some(n) = opts.slow_log {
        config.slow_log_capacity = n;
    }
    if let Some(ms) = opts.slow_ms {
        config.slow_log_threshold = Duration::from_millis(ms);
    }
    db.into_server(config)
        .map_err(|e| CliError::Other(e.to_string()))
}

/// Drives one server session: submits every query line (backpressure by
/// draining the oldest pending result when the queue is full). *Answer*
/// blocks print in submission order — sorted, distinct rows per query —
/// but a line that fails synchronously (malformed fields, parse error,
/// unknown node) prints its `# error` block immediately, possibly ahead
/// of earlier queries still in flight; every block is labelled
/// `# query N`, so association is unambiguous either way.
fn run_session(
    server: &RpqServer,
    input: impl BufRead,
    out: &mut impl Write,
    show_profile: bool,
) -> Result<(usize, usize), CliError> {
    let mut pending: VecDeque<(usize, String, ring_rpq::rpq_server::QueryTicket)> = VecDeque::new();
    let mut submitted = 0usize;
    let mut errors = 0usize;
    let echo = |e: &std::io::Error| CliError::Other(format!("writing output: {e}"));
    for line in input.lines() {
        let line = line.map_err(|e| format!("reading queries: {e}"))?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        // Session meta-commands: snapshot requests interleaved with
        // queries. In-flight answers flush first, so the snapshot covers
        // everything submitted above it.
        if text == ".drain" {
            while let Some(entry) = pending.pop_front() {
                errors += flush_one(server, entry, out, show_profile)?;
            }
            let report = server.drain(Duration::from_secs(30));
            writeln!(
                out,
                "{{\"drained\":{},\"aborted\":{},\"checkpoint_epoch\":{},\"checkpoint_error\":{}}}",
                report.drained,
                report.aborted,
                report
                    .checkpoint_epoch
                    .map_or_else(|| "null".to_string(), |e| e.to_string()),
                report
                    .checkpoint_error
                    .as_deref()
                    .map_or_else(|| "null".to_string(), rpq_core::jsonw::quoted),
            )
            .map_err(|e| echo(&e))?;
            // The server rejects everything after a drain; end the
            // session rather than erroring the rest of the input.
            break;
        }
        if matches!(text, ".metrics" | ".prometheus" | ".slow") {
            while let Some(entry) = pending.pop_front() {
                errors += flush_one(server, entry, out, show_profile)?;
            }
            match text {
                ".metrics" => writeln!(out, "{}", server.metrics_json()),
                ".prometheus" => write!(out, "{}", server.prometheus_metrics()),
                ".slow" => writeln!(out, "{}", server.slow_queries_json()),
                _ => unreachable!(),
            }
            .map_err(|e| echo(&e))?;
            continue;
        }
        submitted += 1;
        let n = submitted;
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let [s, expr, o] = tokens[..] else {
            writeln!(out, "# query {n}: {text}").map_err(|e| echo(&e))?;
            writeln!(
                out,
                "# error: expected 3 fields 's expr o', got {}",
                tokens.len()
            )
            .map_err(|e| echo(&e))?;
            errors += 1;
            continue;
        };
        loop {
            match server.submit(s, expr, o) {
                Ok(ticket) => {
                    pending.push_back((n, text.to_string(), ticket));
                    break;
                }
                Err(RpqError::Overloaded { .. }) => {
                    // Backpressure: finish the oldest in-flight query
                    // before retrying.
                    match pending.pop_front() {
                        Some(entry) => errors += flush_one(server, entry, out, show_profile)?,
                        None => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
                Err(e) => {
                    writeln!(out, "# query {n}: {text}").map_err(|err| echo(&err))?;
                    writeln!(out, "# error: {e}").map_err(|err| echo(&err))?;
                    errors += 1;
                    break;
                }
            }
        }
    }
    while let Some(entry) = pending.pop_front() {
        errors += flush_one(server, entry, out, show_profile)?;
    }
    Ok((submitted, errors))
}

/// Waits for one pending query and prints its block; returns 1 if it
/// failed, 0 otherwise.
fn flush_one(
    server: &RpqServer,
    (n, text, ticket): (usize, String, ring_rpq::rpq_server::QueryTicket),
    out: &mut impl Write,
    show_profile: bool,
) -> Result<usize, CliError> {
    let echo = |e: std::io::Error| CliError::Other(format!("writing output: {e}"));
    writeln!(out, "# query {n}: {text}").map_err(echo)?;
    match server.wait(&ticket) {
        Ok(answer) => {
            // Deterministic rows: answers come id-sorted and distinct;
            // re-sort by name so output matches `rpq-cli query`.
            let mut named = server.resolve_pairs(&answer);
            named.sort();
            named.dedup();
            for (s, o) in named {
                writeln!(out, "{s}\t{o}").map_err(echo)?;
            }
            writeln!(
                out,
                "# {} pairs{}{}",
                answer.pairs.len(),
                if answer.truncated { " (limit hit)" } else { "" },
                if answer.timed_out { " (timed out)" } else { "" },
            )
            .map_err(echo)?;
            if show_profile {
                if let Some(p) = &answer.profile {
                    writeln!(out, "# profile: {}", p.to_json()).map_err(echo)?;
                }
            }
            Ok(0)
        }
        Err(e) => {
            writeln!(out, "# error: {e}").map_err(echo)?;
            Ok(1)
        }
    }
}

fn emit_metrics(server: &RpqServer, target: Option<&str>) -> Result<(), CliError> {
    let json = server.metrics_json();
    match target {
        None => {}
        Some("-") => eprintln!("{json}"),
        Some(path) => std::fs::write(path, json + "\n")
            .map_err(|e| CliError::Other(format!("writing {path}: {e}")))?,
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let opts = parse_serve_opts(args)?;
    let [index] = &opts.positional[..] else {
        return Err(format!(
            "serve needs <index.db> [--workers n] [--threads n] [--metrics file]\n{USAGE}"
        )
        .into());
    };
    let server = start_server(index, &opts)?;
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let (submitted, errors) = run_session(&server, stdin.lock(), &mut stdout, opts.profile)?;
    stdout.flush().ok();
    eprintln!(
        "served {submitted} queries ({} ok, {errors} failed)",
        submitted - errors
    );
    emit_metrics(&server, opts.metrics.as_deref())?;
    server.shutdown();
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), CliError> {
    let opts = parse_serve_opts(args)?;
    let [index, queries] = &opts.positional[..] else {
        return Err(format!(
            "batch needs <index.db> <queries.txt> [--explain] [--workers n] [--threads n] [--metrics file]\n{USAGE}"
        )
        .into());
    };
    let file = std::fs::File::open(queries)
        .map_err(|e| CliError::Other(format!("opening {queries}: {e}")))?;
    if opts.explain {
        return batch_explain(index, std::io::BufReader::new(file));
    }
    let server = start_server(index, &opts)?;
    let t = Instant::now();
    let mut stdout = std::io::stdout().lock();
    let (submitted, errors) = run_session(
        &server,
        std::io::BufReader::new(file),
        &mut stdout,
        opts.profile,
    )?;
    stdout.flush().ok();
    let secs = t.elapsed().as_secs_f64();
    eprintln!(
        "batch: {submitted} queries ({} ok, {errors} failed) in {secs:.3}s ({:.0} q/s)",
        submitted - errors,
        submitted as f64 / secs.max(1e-9)
    );
    emit_metrics(&server, opts.metrics.as_deref())?;
    server.shutdown();
    Ok(())
}

/// `batch --explain`: plan every query without evaluating — one stable
/// JSON object per query line (parse failures become `{"error":...}`
/// objects in place, so line N of the output always describes query N).
fn batch_explain(index: &str, input: impl BufRead) -> Result<(), CliError> {
    let db = load(index)?;
    for line in input.lines() {
        let line = line.map_err(|e| format!("reading queries: {e}"))?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let [s, expr, o] = tokens[..] else {
            println!(
                "{{\"error\":\"expected 3 fields 's expr o', got {}\"}}",
                tokens.len()
            );
            continue;
        };
        match db.explain_plan(s, expr, o) {
            Ok(plan) => println!("{}", plan.to_json()),
            Err(e) => println!("{{\"error\":{}}}", rpq_core::jsonw::quoted(&e.to_string())),
        }
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let (mode, rest) = split_residency(args)?;
    let [index] = &rest[..] else {
        return Err(format!("stats needs <index.db> [--mmap|--heap]\n{USAGE}").into());
    };
    let db = load_as(index, mode)?;
    let info = db.open_info();
    println!(
        "open:                {} us ({}, {} mapped bytes)",
        info.open_us,
        info.resident.as_str(),
        info.mapped_bytes
    );
    // Sharded indexes aggregate across every shard (the per-shard
    // breakdown shows skew); a single ring reports itself.
    let shard_rows = if db.is_sharded() {
        use ring_rpq::rpq_server::QuerySource;
        db.shard_stats().unwrap_or_default()
    } else {
        Vec::new()
    };
    if !shard_rows.is_empty() {
        println!("shards:              {}", shard_rows.len());
        for (i, s) in shard_rows.iter().enumerate() {
            println!(
                "  shard {i:<3}          {} triples, {} bytes",
                s.triples, s.bytes
            );
        }
    }
    let g = db.graph();
    let r = db.ring();
    let (indexed, ring_bytes, rpq_only_bytes) = if shard_rows.is_empty() {
        (r.n_triples(), r.size_bytes(), r.size_bytes_rpq_only())
    } else {
        (
            shard_rows.iter().map(|s| s.triples).sum(),
            shard_rows.iter().map(|s| s.bytes).sum(),
            0,
        )
    };
    println!("edges (base):        {}", g.len());
    println!("edges (indexed G^):  {indexed}");
    println!("nodes:               {}", g.n_nodes());
    println!("predicates (base):   {}", g.n_preds());
    println!("ring bytes:          {ring_bytes}");
    println!(
        "ring bytes/edge:     {:.2}",
        ring_bytes as f64 / g.len().max(1) as f64
    );
    if rpq_only_bytes > 0 {
        println!(
            "rpq-only bytes/edge: {:.2}",
            rpq_only_bytes as f64 / g.len().max(1) as f64
        );
    }
    // Top predicates by cardinality — the selectivity the planner uses.
    // For a sharded index the base graph (the shards' exact union) is
    // counted directly; per-shard `pred_cardinality` would need summing
    // anyway.
    let mut cards: Vec<(u64, usize)> = if shard_rows.is_empty() {
        (0..g.n_preds())
            .map(|p| (p, r.pred_cardinality(p)))
            .collect()
    } else {
        let mut counts = vec![0usize; g.n_preds() as usize];
        for t in g.triples() {
            counts[t.p as usize] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(p, c)| (p as u64, c))
            .collect()
    };
    cards.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("top predicates:");
    for &(p, c) in cards.iter().take(5) {
        println!("  {:<24} {c} edges", db.preds().name(p));
    }
    Ok(())
}

/// `verify`: deep-check an index file without modifying it — header
/// magic, whole-file or per-section checksums, cross-component
/// consistency (dictionary/alphabet/universe invariants), and the
/// write-ahead-log tail when a `<index>.wal` sibling exists. Prints a
/// one-line JSON report to stdout; exits 0 when healthy, 2 when corrupt.
fn cmd_verify(args: &[String]) -> Result<(), CliError> {
    let [index] = args else {
        return Err(format!("verify needs <index.db>\n{USAGE}").into());
    };
    let path = Path::new(index);
    if path.is_dir() {
        return verify_sharded_dir(index, path);
    }
    let fail = |format: &str, stage: &str, err: String| -> Result<(), CliError> {
        println!(
            "{{\"path\":{},\"format\":{},\"status\":\"corrupt\",\"stage\":{},\"error\":{}}}",
            rpq_core::jsonw::quoted(index),
            rpq_core::jsonw::quoted(format),
            rpq_core::jsonw::quoted(stage),
            rpq_core::jsonw::quoted(&err),
        );
        Err(CliError::Parse(format!(
            "{index} failed verification ({stage}): {err}"
        )))
    };
    let mut magic = [0u8; 8];
    {
        use std::io::Read;
        let mut f = std::fs::File::open(path)
            .map_err(|e| CliError::Other(format!("opening {index}: {e}")))?;
        if let Err(e) = f.read_exact(&mut magic) {
            return fail(
                "unknown",
                "header",
                format!("file shorter than a magic: {e}"),
            );
        }
    }
    let format = match &magic {
        b"RRPQM01\0" => "RRPQM01",
        b"RRPQDB02" => "RRPQDB02",
        b"RRPQDB01" => "RRPQDB01",
        b"RRPQDU02" => "RRPQDU02",
        b"RRPQDU01" => "RRPQDU01",
        _ => return fail("unknown", "header", "unrecognised magic".to_string()),
    };
    // Payload integrity + cross-component consistency. Both paths touch
    // every byte: the mapped verifier heap-opens with section CRCs, the
    // stream loader hashes the file against its footer while parsing.
    let (checksummed, sections, epoch) = match format {
        "RRPQM01" => match ring_rpq::ring::mapped::verify_index_checksums(path) {
            Ok(n) => (n > 0, n as u64, None),
            Err(e) => return fail(format, "checksums", e.to_string()),
        },
        _ => match UpdatableDatabase::load(path) {
            Ok(db) => (format.ends_with("02"), 0, Some(db.epoch())),
            Err(e) => return fail(format, "checksums", e.to_string()),
        },
    };
    // WAL tail: parse-only (no truncation), committed batches counted,
    // and the base epoch must not be ahead of the snapshot.
    let wal_path = UpdatableDatabase::wal_path(path);
    let wal_len = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
    let wal_json = if wal_path.exists() && wal_len < ring_rpq::ring::wal::WAL_HEADER_LEN {
        // A log shorter than its fsynced header is a create/rotate torn
        // mid-write: no committed op can live in it, and a durable open
        // recreates it — recoverable, not corrupt.
        format!("{{\"torn_rotation\":true,\"bytes\":{wal_len}}}")
    } else if wal_path.exists() {
        let rec = match ring_rpq::ring::wal::Wal::inspect(&wal_path) {
            Ok(rec) => rec,
            Err(e) => return fail(format, "wal", e.to_string()),
        };
        if let Some(epoch) = epoch {
            if rec.base_epoch > epoch {
                return fail(
                    format,
                    "wal",
                    format!(
                        "WAL base epoch {} is ahead of snapshot epoch {epoch}",
                        rec.base_epoch
                    ),
                );
            }
        }
        format!(
            "{{\"base_epoch\":{},\"batches\":{},\"ops\":{},\"torn_bytes\":{}}}",
            rec.base_epoch,
            rec.batches.len(),
            rec.op_count(),
            rec.truncated_bytes
        )
    } else {
        "null".to_string()
    };
    // Orphaned temp files from an interrupted save (informational —
    // opening the index durably would clean them up).
    let orphans = count_orphan_tmps(path);
    println!(
        "{{\"path\":{},\"format\":{},\"status\":\"ok\",\"checksummed\":{checksummed},\
         \"checksum_sections\":{sections},\"epoch\":{},\"wal\":{wal_json},\"orphan_tmp\":{orphans}}}",
        rpq_core::jsonw::quoted(index),
        rpq_core::jsonw::quoted(format),
        epoch.map_or_else(|| "null".to_string(), |e| e.to_string()),
    );
    Ok(())
}

/// `verify` on a sharded index directory: the RRPQSH01 manifest is read
/// (CRC footer verified) and cross-checked against every shard file,
/// then each shard's RRPQM01 section checksums are validated — every
/// payload byte is touched. Same report/exit-code contract as the
/// single-file path.
fn verify_sharded_dir(index: &str, dir: &Path) -> Result<(), CliError> {
    let fail = |stage: &str, err: String| -> Result<(), CliError> {
        println!(
            "{{\"path\":{},\"format\":\"RRPQSH01\",\"status\":\"corrupt\",\"stage\":{},\"error\":{}}}",
            rpq_core::jsonw::quoted(index),
            rpq_core::jsonw::quoted(stage),
            rpq_core::jsonw::quoted(&err),
        );
        Err(CliError::Parse(format!(
            "{index} failed verification ({stage}): {err}"
        )))
    };
    if !ring_rpq::ring::sharded::is_sharded_dir(dir) {
        return fail(
            "header",
            "directory has no RRPQSH01 manifest (not a sharded index)".to_string(),
        );
    }
    // Manifest integrity + per-shard cross-checks (triple counts and
    // universes against the manifest).
    let opened = match ring_rpq::ring::sharded::open_dir(dir, OpenMode::Heap) {
        Ok(o) => o,
        Err(e) => return fail("manifest", e.to_string()),
    };
    let mut sections = 0u64;
    for i in 0..opened.len() {
        let shard = dir.join(ring_rpq::ring::sharded::shard_file_name(i));
        match ring_rpq::ring::mapped::verify_index_checksums(&shard) {
            Ok(n) => sections += n as u64,
            Err(e) => return fail(&format!("shard {i} checksums"), e.to_string()),
        }
    }
    let orphans = count_orphan_tmps(&dir.join(ring_rpq::ring::sharded::MANIFEST_FILE));
    println!(
        "{{\"path\":{},\"format\":\"RRPQSH01\",\"status\":\"ok\",\"checksummed\":true,\
         \"checksum_sections\":{sections},\"shards\":{},\"epoch\":null,\"wal\":null,\
         \"orphan_tmp\":{orphans}}}",
        rpq_core::jsonw::quoted(index),
        opened.len(),
    );
    Ok(())
}

/// Counts `<file_name>.*.tmp` siblings — the debris an interrupted
/// atomic save leaves behind — without removing them.
fn count_orphan_tmps(path: &Path) -> usize {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return 0;
    };
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let prefix = format!("{name}.");
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".tmp"))
        })
        .count()
}

fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let (mode, rest) = split_residency(args)?;
    let (core, n) = match rest.len() {
        4 => (&rest[..4], 10usize),
        5 => (
            &rest[..4],
            rest[4]
                .parse()
                .map_err(|_| CliError::Other("bad repeat count".into()))?,
        ),
        _ => {
            return Err(format!(
                "bench needs <index.db> <s> <expr> <o> [n] [--mmap|--heap]\n{USAGE}"
            )
            .into())
        }
    };
    let [index, s, expr, o] = core else {
        unreachable!()
    };
    let db = load_as(index, mode)?;
    let opts = EngineOptions::default();
    let mut times = Vec::with_capacity(n);
    let mut pairs = 0usize;
    for _ in 0..n {
        let t = Instant::now();
        let out = db.query_with(s, expr, o, &opts)?;
        times.push(t.elapsed().as_secs_f64());
        pairs = out.pairs.len();
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{} pairs; {} runs: min {:.6}s median {:.6}s max {:.6}s",
        pairs,
        n,
        times[0],
        times[times.len() / 2],
        times[times.len() - 1]
    );
    Ok(())
}
