//! `rpq-cli` — build, persist and query ring-rpq databases from the shell.
//!
//! ```text
//! rpq-cli build <graph.txt|graph.nt> <index.db>  index a graph file
//! rpq-cli query <index.db> <s> <expr> <o>      run one 2RPQ (use ?vars)
//! rpq-cli stats <index.db>                     index statistics
//! rpq-cli bench <index.db> <s> <expr> <o> [n]  time a query n times
//! ```
//!
//! Examples:
//!
//! ```text
//! rpq-cli build metro.txt metro.db
//! rpq-cli query metro.db baquedano 'l5+/bus' '?y'
//! rpq-cli query metro.db '?x' '(l1|l2|l5)+' santa_ana
//! ```

use ring_rpq::RpqDatabase;
use rpq_core::EngineOptions;
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  rpq-cli build <graph.txt|graph.nt> <index.db>  index a graph file
  rpq-cli query <index.db> <s> <expr> <o>        run one 2RPQ (use ?vars)
  rpq-cli explain <index.db> <s> <expr> <o>      show the evaluation plan
  rpq-cli stats <index.db>                       index statistics
  rpq-cli bench <index.db> <s> <expr> <o> [n]    time a query n times
";

fn cmd_build(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err(format!(
            "build needs <graph.txt|graph.nt> <index.db>\n{USAGE}"
        ));
    };
    let t = Instant::now();
    let db = RpqDatabase::from_graph_file(Path::new(input)).map_err(|e| e.to_string())?;
    let build_secs = t.elapsed().as_secs_f64();
    db.save(Path::new(output))
        .map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "indexed {} edges, {} nodes, {} predicates in {:.2}s",
        db.graph().len(),
        db.graph().n_nodes(),
        db.graph().n_preds(),
        build_secs
    );
    println!(
        "ring: {} bytes ({:.2} bytes/edge) -> {}",
        db.ring().size_bytes(),
        db.ring().size_bytes() as f64 / db.graph().len().max(1) as f64,
        output
    );
    Ok(())
}

fn load(path: &str) -> Result<RpqDatabase, String> {
    RpqDatabase::load(Path::new(path)).map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [index, s, expr, o] = args else {
        return Err(format!("query needs <index.db> <s> <expr> <o>\n{USAGE}"));
    };
    let db = load(index)?;
    let opts = EngineOptions {
        timeout: Some(Duration::from_secs(60)),
        ..EngineOptions::default()
    };
    let t = Instant::now();
    let out = db
        .query_with(s, expr, o, &opts)
        .map_err(|e| e.to_string())?;
    let secs = t.elapsed().as_secs_f64();
    let mut named: Vec<(String, String)> = out
        .pairs
        .iter()
        .map(|&(a, b)| {
            (
                db.nodes().name(a).to_string(),
                db.nodes().name(b).to_string(),
            )
        })
        .collect();
    named.sort();
    for (a, b) in &named {
        println!("{a}\t{b}");
    }
    eprintln!(
        "{} pairs in {:.4}s{}{}",
        named.len(),
        secs,
        if out.truncated { " (limit hit)" } else { "" },
        if out.timed_out { " (timed out)" } else { "" },
    );
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let [index, s, expr, o] = args else {
        return Err(format!("explain needs <index.db> <s> <expr> <o>\n{USAGE}"));
    };
    let db = load(index)?;
    let q = db.parse_query(s, expr, o).map_err(|e| e.to_string())?;
    let plan = rpq_core::explain::explain(db.ring(), &q).map_err(|e| e.to_string())?;
    print!("{plan}");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [index] = args else {
        return Err(format!("stats needs <index.db>\n{USAGE}"));
    };
    let db = load(index)?;
    let g = db.graph();
    let r = db.ring();
    println!("edges (base):        {}", g.len());
    println!("edges (indexed G^):  {}", r.n_triples());
    println!("nodes:               {}", g.n_nodes());
    println!("predicates (base):   {}", g.n_preds());
    println!("ring bytes:          {}", r.size_bytes());
    println!(
        "ring bytes/edge:     {:.2}",
        r.size_bytes() as f64 / g.len().max(1) as f64
    );
    println!(
        "rpq-only bytes/edge: {:.2}",
        r.size_bytes_rpq_only() as f64 / g.len().max(1) as f64
    );
    // Top predicates by cardinality — the selectivity the planner uses.
    let mut cards: Vec<(u64, usize)> = (0..g.n_preds())
        .map(|p| (p, r.pred_cardinality(p)))
        .collect();
    cards.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("top predicates:");
    for &(p, c) in cards.iter().take(5) {
        println!("  {:<24} {c} edges", db.preds().name(p));
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (core, n) = match args.len() {
        4 => (&args[..4], 10usize),
        5 => (&args[..4], args[4].parse().map_err(|_| "bad repeat count")?),
        _ => {
            return Err(format!(
                "bench needs <index.db> <s> <expr> <o> [n]\n{USAGE}"
            ))
        }
    };
    let [index, s, expr, o] = core else {
        unreachable!()
    };
    let db = load(index)?;
    let opts = EngineOptions::default();
    let mut times = Vec::with_capacity(n);
    let mut pairs = 0usize;
    for _ in 0..n {
        let t = Instant::now();
        let out = db
            .query_with(s, expr, o, &opts)
            .map_err(|e| e.to_string())?;
        times.push(t.elapsed().as_secs_f64());
        pairs = out.pairs.len();
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{} pairs; {} runs: min {:.6}s median {:.6}s max {:.6}s",
        pairs,
        n,
        times[0],
        times[times.len() / 2],
        times[times.len() - 1]
    );
    Ok(())
}
