//! The name-level updatable database: [`UpdatableDatabase`] wraps the
//! id-level [`ring::store::TripleStore`] (immutable ring + delta
//! overlay, atomic versioned snapshots) with dictionary handling,
//! N-Triples delta loading, and the same query API as [`RpqDatabase`].
//!
//! Life cycle: [`UpdatableDatabase::insert`] / [`UpdatableDatabase::delete`]
//! buffer triples (interning new names immediately — ids are stable and
//! append-only, even across compactions); [`UpdatableDatabase::commit`]
//! publishes them atomically under a new snapshot **epoch**; queries
//! capture one snapshot for their whole evaluation, so they never see a
//! half-applied batch; [`UpdatableDatabase::compact`] (or the size-ratio
//! auto-trigger, or a commit that introduces new predicate labels)
//! rebuilds the ring from ring ⊎ delta and swaps it in.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use ring::delta::DeltaIndex;
use ring::store::{StoreSnapshot, StoreStats, TripleStore};
use ring::wal::{Wal, WalOp};
use ring::{Dict, Graph, Id, Ring, Triple};
use rpq_core::{EngineOptions, QueryOutput, RpqEngine, RpqQuery, SourceSnapshot, Term};
use succinct::checksum::{CrcReader, CrcWriter};
use succinct::io::Persist;

use crate::{DbError, RpqDatabase};

/// File magic of the updatable on-disk format ([`UpdatableDatabase::save`]),
/// current (checksum-footed) revision.
const MAGIC_UPDATABLE: &[u8; 8] = b"RRPQDU02";
/// File magic of the immutable format ([`RpqDatabase::save`]), current
/// (checksum-footed) revision.
const MAGIC_IMMUTABLE: &[u8; 8] = b"RRPQDB02";
/// Pre-checksum revision of the updatable format (read-compat only).
const MAGIC_UPDATABLE_V1: &[u8; 8] = b"RRPQDU01";
/// Pre-checksum revision of the immutable format (read-compat only).
const MAGIC_IMMUTABLE_V1: &[u8; 8] = b"RRPQDB01";

struct Dicts {
    nodes: Dict,
    preds: Dict,
}

/// The durability side-car of a database opened with
/// [`UpdatableDatabase::open_durable`]: the open write-ahead log, the
/// name-level mirror of buffered (uncommitted) ops, and the snapshot
/// path checkpoints rewrite.
struct WalState {
    wal: Wal,
    pending: Vec<WalOp>,
    path: PathBuf,
}

/// A live-updatable RPQ database: the ring plus a delta overlay behind
/// snapshot-consistent queries, with name-level inserts and deletes.
///
/// ```
/// use ring_rpq::UpdatableDatabase;
///
/// let db = UpdatableDatabase::from_text("a p b\nb p c\n").unwrap();
/// db.insert("c", "p", "d");
/// db.delete("a", "p", "b");
/// db.commit();
/// let pairs = db.query("?x", "p+", "d").unwrap();
/// assert_eq!(pairs, vec![
///     ("b".to_string(), "d".to_string()),
///     ("c".to_string(), "d".to_string()),
/// ]);
/// ```
pub struct UpdatableDatabase {
    store: TripleStore,
    dicts: RwLock<Dicts>,
    /// `Some` when opened via [`Self::open_durable`]. The mutex also
    /// serialises mutations against commits and checkpoints, so every
    /// committed op is WAL'd first. Lock order: `durable` before
    /// `dicts` — never the other way around.
    durable: Mutex<Option<WalState>>,
}

impl UpdatableDatabase {
    /// Wraps an immutable database (consumes it; the ring is reused, not
    /// rebuilt).
    pub fn from_database(db: RpqDatabase) -> Self {
        let (graph, ring, nodes, preds) = db.into_raw_parts();
        let ring = Arc::try_unwrap(ring).unwrap_or_else(|a| (*a).clone());
        Self {
            store: TripleStore::from_built(graph, ring, DeltaIndex::empty(0), 0),
            dicts: RwLock::new(Dicts { nodes, preds }),
            durable: Mutex::new(None),
        }
    }

    /// Builds from whitespace triple text (see [`RpqDatabase::from_text`]).
    pub fn from_text(text: &str) -> Result<Self, DbError> {
        RpqDatabase::from_text(text).map(Self::from_database)
    }

    /// Builds from N-Triples text (see [`RpqDatabase::from_ntriples`]).
    pub fn from_ntriples(text: &str) -> Result<Self, DbError> {
        RpqDatabase::from_ntriples(text).map(Self::from_database)
    }

    /// Reads a graph file, picking the parser by extension.
    pub fn from_graph_file(path: &Path) -> Result<Self, DbError> {
        RpqDatabase::from_graph_file(path).map(Self::from_database)
    }

    /// Replaces the auto-compaction trigger: rebuild when the committed
    /// overlay reaches `ratio × base edges` (`None` disables; the
    /// default is [`TripleStore::DEFAULT_AUTO_COMPACT_RATIO`]).
    pub fn with_auto_compact_ratio(mut self, ratio: Option<f64>) -> Self {
        self.store = self.store.with_auto_compact_ratio(ratio);
        self
    }

    /// The underlying id-level store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Buffers the insertion of `(subject, predicate, object)`. Unknown
    /// names are interned immediately (ids are append-only and survive
    /// compaction); the triple becomes visible at the next
    /// [`Self::commit`]. Inserting a triple with a brand-new predicate
    /// makes that commit rebuild the ring (the succinct alphabet is
    /// fixed per build).
    pub fn insert(&self, subject: &str, predicate: &str, object: &str) {
        let mut durable = self.durable.lock().unwrap();
        let mut dicts = self.dicts.write().unwrap();
        let t = Triple::new(
            dicts.nodes.intern(subject),
            dicts.preds.intern(predicate),
            dicts.nodes.intern(object),
        );
        self.store.insert(t);
        if let Some(state) = durable.as_mut() {
            state.pending.push(WalOp::Insert {
                s: subject.to_string(),
                p: predicate.to_string(),
                o: object.to_string(),
            });
        }
    }

    /// Buffers the deletion of `(subject, predicate, object)`. Returns
    /// `false` (and buffers nothing) when a name is unknown — such a
    /// triple cannot be live.
    pub fn delete(&self, subject: &str, predicate: &str, object: &str) -> bool {
        let mut durable = self.durable.lock().unwrap();
        let dicts = self.dicts.read().unwrap();
        let (Some(s), Some(p), Some(o)) = (
            dicts.nodes.get(subject),
            dicts.preds.get(predicate),
            dicts.nodes.get(object),
        ) else {
            return false;
        };
        self.store.delete(Triple::new(s, p, o));
        if let Some(state) = durable.as_mut() {
            state.pending.push(WalOp::Delete {
                s: subject.to_string(),
                p: predicate.to_string(),
                o: object.to_string(),
            });
        }
        true
    }

    /// Buffers every triple of a whitespace triple-text block as inserts.
    /// Returns the number of triples buffered.
    pub fn insert_text(&self, text: &str) -> Result<usize, DbError> {
        self.apply_text(text, true)
    }

    /// Buffers every triple of a whitespace triple-text block as deletes.
    pub fn delete_text(&self, text: &str) -> Result<usize, DbError> {
        self.apply_text(text, false)
    }

    fn apply_text(&self, text: &str, is_insert: bool) -> Result<usize, DbError> {
        let (graph, nodes, preds) = Graph::parse_text(text).map_err(DbError::Graph)?;
        Ok(self.apply_parsed(&graph, &nodes, &preds, is_insert))
    }

    /// Buffers every triple of an N-Triples block as inserts — the delta
    /// counterpart of [`RpqDatabase::from_ntriples`]. Returns the number
    /// of triples buffered.
    pub fn insert_ntriples(&self, text: &str) -> Result<usize, DbError> {
        self.apply_ntriples(text, true)
    }

    /// Buffers every triple of an N-Triples block as deletes.
    pub fn delete_ntriples(&self, text: &str) -> Result<usize, DbError> {
        self.apply_ntriples(text, false)
    }

    fn apply_ntriples(&self, text: &str, is_insert: bool) -> Result<usize, DbError> {
        let (graph, nodes, preds) =
            ring::ntriples::parse_ntriples(text).map_err(|e| DbError::Graph(e.to_string()))?;
        Ok(self.apply_parsed(&graph, &nodes, &preds, is_insert))
    }

    fn apply_parsed(&self, graph: &Graph, nodes: &Dict, preds: &Dict, is_insert: bool) -> usize {
        let mut n = 0;
        for t in graph.triples() {
            let s = nodes.name(t.s);
            let p = preds.name(t.p);
            let o = nodes.name(t.o);
            if is_insert {
                self.insert(s, p, o);
                n += 1;
            } else if self.delete(s, p, o) {
                n += 1;
            }
        }
        n
    }

    /// Atomically commits the buffered operations under a new epoch (see
    /// [`TripleStore::commit`] for the rebuild and auto-compaction
    /// rules). Returns the resulting epoch.
    ///
    /// On a database opened with [`Self::open_durable`] this is the
    /// infallible convenience form of [`Self::commit_durable`]: if the
    /// write-ahead log cannot be fsynced the commit is **not published**
    /// (acknowledging an update the log does not hold would defeat the
    /// WAL) — a warning is printed and the epoch stays put, with the
    /// buffered ops retained for a retry.
    pub fn commit(&self) -> u64 {
        match self.commit_durable() {
            Ok(epoch) => epoch,
            Err(err) => {
                eprintln!("warning: commit not published, WAL append failed: {err}");
                self.store.epoch()
            }
        }
    }

    /// [`Self::commit`] with the durability error surfaced: appends the
    /// buffered ops plus a commit marker to the write-ahead log and
    /// fsyncs **before** publishing the new epoch, so an acknowledged
    /// commit survives a crash. On a non-durable database this is
    /// exactly [`TripleStore::commit`] and cannot fail.
    pub fn commit_durable(&self) -> std::io::Result<u64> {
        let mut durable = self.durable.lock().unwrap();
        let Some(state) = durable.as_mut() else {
            return Ok(self.store.commit());
        };
        if state.pending.is_empty() {
            return Ok(self.store.commit());
        }
        let next = self.store.epoch() + 1;
        let ops = std::mem::take(&mut state.pending);
        if let Err(err) = state.wal.append_batch(&ops, next) {
            state.pending = ops; // keep the mirror for a retry
            return Err(err);
        }
        Ok(self.store.commit())
    }

    /// Rebuilds the ring from ring ⊎ delta and swaps it in. Returns the
    /// resulting epoch.
    pub fn compact(&self) -> u64 {
        self.store.compact()
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Buffered, uncommitted operations.
    pub fn pending_ops(&self) -> usize {
        self.store.pending_ops()
    }

    /// Live update counters.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Compacts and unwraps into an immutable [`RpqDatabase`] (buffered,
    /// uncommitted operations are committed first).
    pub fn into_database(self) -> RpqDatabase {
        self.store.commit();
        self.store.compact();
        let snap = self.store.snapshot();
        let dicts = self.dicts.into_inner().unwrap();
        let graph = (*snap.graph).clone();
        RpqDatabase::from_built_parts(graph, Arc::clone(&snap.ring), dicts.nodes, dicts.preds)
    }

    /// Parses endpoints and expression against the given snapshot.
    fn parse_query_at(
        &self,
        snap: &StoreSnapshot,
        subject: &str,
        expr: &str,
        object: &str,
    ) -> Result<RpqQuery, DbError> {
        struct Resolver<'a> {
            preds: &'a Dict,
            ring: &'a Ring,
        }
        impl automata::parser::LabelResolver for Resolver<'_> {
            fn resolve(&self, name: &str) -> Option<Id> {
                self.preds.get(name)
            }
            fn inverse(&self, label: Id) -> Id {
                self.ring.inverse_label(label)
            }
        }
        let dicts = self.dicts.read().unwrap();
        let e = automata::parser::parse(
            expr,
            &Resolver {
                preds: &dicts.preds,
                ring: &snap.ring,
            },
        )
        .map_err(DbError::Parse)?;
        let term = |name: &str| -> Result<Term, DbError> {
            if name.starts_with('?') {
                Ok(Term::Var)
            } else {
                dicts
                    .nodes
                    .get(name)
                    .map(Term::Const)
                    .ok_or_else(|| DbError::UnknownNode(name.to_string()))
            }
        };
        Ok(RpqQuery::new(term(subject)?, e, term(object)?))
    }

    /// Parses endpoints and expression into an id-level [`RpqQuery`]
    /// against the current snapshot's alphabet.
    pub fn parse_query(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
    ) -> Result<RpqQuery, DbError> {
        self.parse_query_at(&self.store.snapshot(), subject, expr, object)
    }

    /// Evaluates a query against the current snapshot, returning name
    /// pairs sorted lexicographically. Concurrent commits never tear the
    /// answer: the whole evaluation runs against the snapshot captured
    /// here.
    pub fn query(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
    ) -> Result<Vec<(String, String)>, DbError> {
        let out = self.query_with(subject, expr, object, &EngineOptions::default())?;
        let dicts = self.dicts.read().unwrap();
        let mut named: Vec<(String, String)> = out
            .pairs
            .iter()
            .map(|&(s, o)| {
                (
                    dicts.nodes.name(s).to_string(),
                    dicts.nodes.name(o).to_string(),
                )
            })
            .collect();
        named.sort();
        Ok(named)
    }

    /// Evaluates with explicit options, returning the raw id-level
    /// output (snapshot-consistent, like [`Self::query`]).
    pub fn query_with(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
        opts: &EngineOptions,
    ) -> Result<QueryOutput, DbError> {
        let snap = self.store.snapshot();
        let q = self.parse_query_at(&snap, subject, expr, object)?;
        self.evaluate_at(&snap, &q, opts)
    }

    /// Evaluates an id-level query against the given snapshot. A
    /// constant naming an interned-but-not-yet-committed node is simply
    /// absent from this snapshot: the answer is empty.
    fn evaluate_at(
        &self,
        snap: &StoreSnapshot,
        q: &RpqQuery,
        opts: &EngineOptions,
    ) -> Result<QueryOutput, DbError> {
        let universe = snap.n_nodes();
        for t in [q.subject, q.object] {
            if let Term::Const(c) = t {
                if c >= universe {
                    return Ok(QueryOutput::default());
                }
            }
        }
        RpqEngine::over(snap)
            .evaluate(q, opts)
            .map_err(DbError::Query)
    }

    /// Persists the committed state (graph, dictionaries, ring, delta,
    /// epoch). Buffered, *uncommitted* operations are not saved. When
    /// the overlay is empty **and** the dictionaries match the graph's
    /// id universes exactly, the file uses the immutable format,
    /// loadable by [`RpqDatabase::load`] too; otherwise the updatable
    /// format carries the larger (append-only) dictionaries safely.
    /// (Writes are atomic: a temp file in the same directory is fsynced
    /// and renamed over `path`, so a crashed save leaves the previous
    /// file intact. The payload carries a CRC32C footer that loads
    /// verify. On a [`Self::open_durable`] database, saving to the
    /// opened path is a **checkpoint**: the write-ahead log is rotated
    /// back to empty once the snapshot covers it.)
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        // Hold the durability lock across snapshot → write → rotate so
        // no commit can slip between the persisted snapshot and the
        // log truncation (its ops would vanish from both).
        let mut durable = self.durable.lock().unwrap();
        let snap = self.store.snapshot();
        let dicts = self.dicts.read().unwrap();
        // Append-only interning can leave the dicts larger than the
        // committed graph (names used only by uncommitted or deleted
        // triples); RpqDatabase::load requires exact sizes.
        let immutable = snap.delta.is_empty()
            && dicts.nodes.len() as Id == snap.graph.n_nodes()
            && dicts.preds.len() as Id == snap.graph.n_preds();
        ring::durable::atomic_write(path, |out| {
            use std::io::Write;
            let mut f = CrcWriter::new(out);
            f.write_all(if immutable {
                MAGIC_IMMUTABLE
            } else {
                MAGIC_UPDATABLE
            })?;
            snap.graph.write_to(&mut f)?;
            dicts.nodes.write_to(&mut f)?;
            dicts.preds.write_to(&mut f)?;
            snap.ring.write_to(&mut f)?;
            if !immutable {
                snap.delta.write_to(&mut f)?;
                succinct::io::write_u64(&mut f, snap.epoch)?;
            }
            ring::durable::finish_footer(&mut f)
        })?;
        if let Some(state) = durable.as_mut() {
            if state.path == path {
                // The immutable format carries no epoch field and
                // reloads at 0, so the rotated log must base itself on
                // the epoch the file actually persists — a log ahead of
                // its snapshot is rejected on open as another index's.
                state.wal.rotate(if immutable { 0 } else { snap.epoch })?;
            }
        }
        Ok(())
    }

    /// For a durable database ([`Self::open_durable`]): re-saves the
    /// snapshot to the opened path and rotates the write-ahead log,
    /// bounding future replay work. Returns the checkpointed epoch.
    /// Errors with [`std::io::ErrorKind::Unsupported`] when the database
    /// was not opened durably.
    pub fn checkpoint(&self) -> std::io::Result<u64> {
        let path = match self.durable.lock().unwrap().as_ref() {
            Some(state) => state.path.clone(),
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "checkpoint on a database without a write-ahead log",
                ))
            }
        };
        self.save(&path)?;
        Ok(self.store.epoch())
    }

    /// Whether this database was opened with [`Self::open_durable`] and
    /// is write-ahead logging its commits.
    pub fn is_durable(&self) -> bool {
        self.durable.lock().unwrap().is_some()
    }

    /// Loads a database persisted by [`Self::save`] **or**
    /// [`RpqDatabase::save`] (an immutable file loads with an empty
    /// overlay at epoch 0).
    pub fn load(path: &Path) -> std::io::Result<Self> {
        use succinct::io::bad_data;
        let file = std::fs::File::open(path)?;
        let mut f = CrcReader::new(std::io::BufReader::new(ring::durable::FaultReader::new(
            file,
        )));
        let mut magic = [0u8; 8];
        std::io::Read::read_exact(&mut f, &mut magic)?;
        let (updatable, checksummed) = match &magic {
            m if m == MAGIC_UPDATABLE => (true, true),
            m if m == MAGIC_IMMUTABLE => (false, true),
            m if m == MAGIC_UPDATABLE_V1 => (true, false),
            m if m == MAGIC_IMMUTABLE_V1 => (false, false),
            _ => return Err(bad_data("not a ring-rpq database file")),
        };
        if !checksummed {
            eprintln!(
                "warning: {} predates checksums (no integrity footer); re-save to upgrade",
                path.display()
            );
        }
        let graph = Graph::read_from(&mut f)?;
        let nodes = Dict::read_from(&mut f)?;
        let preds = Dict::read_from(&mut f)?;
        let ring = Ring::read_from(&mut f)?;
        let (delta, epoch) = if updatable {
            let delta = DeltaIndex::read_from(&mut f)?;
            let epoch = succinct::io::read_u64(&mut f)?;
            (delta, epoch)
        } else {
            (DeltaIndex::empty(graph.n_preds()), 0)
        };
        // Verify integrity before any structural check: a corrupt file
        // should say "checksum mismatch", not a misleading shape error.
        if checksummed {
            ring::durable::verify_footer(&mut f, &path.display().to_string())?;
        }
        if (preds.len() as Id) < graph.n_preds() {
            return Err(bad_data(
                "predicate dictionary smaller than the graph alphabet",
            ));
        }
        if ring.n_preds_base() != graph.n_preds() {
            return Err(bad_data("ring alphabet does not match the graph"));
        }
        if updatable && delta.n_preds_base() != graph.n_preds() {
            return Err(bad_data("delta alphabet does not match the graph"));
        }
        if (nodes.len() as Id) < graph.n_nodes().max(delta.n_nodes()) {
            return Err(bad_data("dictionary smaller than the node universe"));
        }
        Ok(Self {
            store: TripleStore::from_built(graph, ring, delta, epoch),
            dicts: RwLock::new(Dicts { nodes, preds }),
            durable: Mutex::new(None),
        })
    }

    /// The write-ahead-log sibling of a snapshot file: `<path>.wal`.
    pub fn wal_path(path: &Path) -> PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".wal");
        PathBuf::from(os)
    }

    /// Opens a saved database **durably**: recovers the `<path>.wal`
    /// write-ahead log (creating a fresh one when absent), replays every
    /// committed batch the snapshot may be missing, and from then on
    /// write-ahead logs each [`Self::commit`] so acknowledged updates
    /// survive a crash. [`Self::save`] to the same path (or
    /// [`Self::checkpoint`]) rotates the log. Orphaned temp files from
    /// an interrupted earlier save are cleaned up first.
    ///
    /// Replay is idempotent (the last op on a triple wins), so batches
    /// the snapshot already folded in are harmless; a log whose base
    /// epoch is *ahead* of the snapshot is rejected — it belongs to a
    /// newer snapshot that was lost or rolled back.
    pub fn open_durable(path: &Path) -> std::io::Result<Self> {
        let orphans = ring::durable::cleanup_orphans(path);
        if orphans > 0 {
            eprintln!(
                "recovery: removed {orphans} orphaned temp file(s) from an interrupted save of {}",
                path.display()
            );
        }
        let db = Self::load(path)?;
        let wal_path = Self::wal_path(path);
        let wal_len = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        let wal = if wal_path.exists() && wal_len < ring::wal::WAL_HEADER_LEN {
            // Shorter than the header: only a create/rotate torn
            // mid-write can produce this — the header is fsynced before
            // any append is acknowledged, so no committed op is lost.
            eprintln!(
                "recovery: {} torn during log rotation ({wal_len} byte(s)); starting a fresh log",
                wal_path.display()
            );
            Wal::create(&wal_path, db.epoch())?
        } else if wal_path.exists() {
            let (wal, recovery) = Wal::recover(&wal_path)?;
            if recovery.base_epoch > db.epoch() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "WAL {} is based on epoch {} but the snapshot is at epoch {}; \
                         the snapshot it belongs to was lost",
                        wal_path.display(),
                        recovery.base_epoch,
                        db.epoch()
                    ),
                ));
            }
            if recovery.truncated_bytes > 0 {
                eprintln!(
                    "recovery: truncated {} byte(s) of torn tail from {}",
                    recovery.truncated_bytes,
                    wal_path.display()
                );
            }
            if recovery.op_count() > 0 {
                // Replay through the normal name-level path (the WAL is
                // not attached yet, so nothing is re-logged); dictionary
                // interning is deterministic, reproducing the ids.
                for batch in &recovery.batches {
                    for op in &batch.ops {
                        match op {
                            WalOp::Insert { s, p, o } => db.insert(s, p, o),
                            WalOp::Delete { s, p, o } => {
                                db.delete(s, p, o);
                            }
                        }
                    }
                    db.store.commit();
                }
                eprintln!(
                    "recovery: replayed {} op(s) in {} committed batch(es) from {}",
                    recovery.op_count(),
                    recovery.batches.len(),
                    wal_path.display()
                );
            }
            wal
        } else {
            Wal::create(&wal_path, db.epoch())?
        };
        *db.durable.lock().unwrap() = Some(WalState {
            wal,
            pending: Vec::new(),
            path: path.to_path_buf(),
        });
        Ok(db)
    }

    /// Starts a concurrent query server over this live database (see
    /// [`rpq_server::RpqServer`]): queries capture a snapshot epoch at
    /// submit time, caches are epoch-keyed and dropped on epoch bumps,
    /// and commits through the returned server's
    /// [`source`](rpq_server::RpqServer::source) are safe while queries
    /// run. Unusable configurations (zero workers without
    /// admission-only) are rejected with
    /// [`rpq_server::RpqError::InvalidConfig`].
    pub fn into_server(
        self,
        config: rpq_server::ServerConfig,
    ) -> Result<rpq_server::RpqServer, rpq_server::RpqError> {
        rpq_server::RpqServer::start(Arc::new(self), config)
    }
}

impl rpq_server::QuerySource for UpdatableDatabase {
    fn snapshot(&self) -> SourceSnapshot {
        SourceSnapshot::from_store(&self.store.snapshot())
    }

    fn node_id(&self, name: &str) -> Option<Id> {
        self.dicts.read().unwrap().nodes.get(name)
    }

    fn node_name(&self, id: Id) -> Option<String> {
        let dicts = self.dicts.read().unwrap();
        (id < dicts.nodes.len() as Id).then(|| dicts.nodes.name(id).to_string())
    }

    fn pred_id(&self, name: &str) -> Option<Id> {
        self.dicts.read().unwrap().preds.get(name)
    }

    fn update_stats(&self) -> Option<rpq_server::UpdateStats> {
        Some(self.store.stats().into())
    }

    fn checkpoint(&self) -> Option<std::io::Result<u64>> {
        self.is_durable().then(|| self.checkpoint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_commit_roundtrip() {
        let db = UpdatableDatabase::from_text("a p b\nb p c\n")
            .unwrap()
            .with_auto_compact_ratio(None);
        db.insert("c", "p", "d");
        db.delete("a", "p", "b");
        assert_eq!(db.pending_ops(), 2);
        // Invisible before commit.
        assert_eq!(
            db.query("?x", "p", "?y").unwrap(),
            vec![("a".into(), "b".into()), ("b".into(), "c".into())]
        );
        assert_eq!(db.commit(), 1);
        assert_eq!(
            db.query("?x", "p", "?y").unwrap(),
            vec![("b".into(), "c".into()), ("c".into(), "d".into())]
        );
        // Inverse steps see the delta too.
        assert_eq!(
            db.query("d", "^p", "?y").unwrap(),
            vec![("d".into(), "c".into())]
        );
    }

    #[test]
    fn new_predicates_rebuild_and_resolve() {
        let db = UpdatableDatabase::from_text("a p b\n").unwrap();
        db.insert("b", "q", "c");
        db.commit();
        assert_eq!(
            db.query("a", "p/q", "?y").unwrap(),
            vec![("a".into(), "c".into())]
        );
        assert!(db.store().snapshot().delta.is_empty());
    }

    #[test]
    fn uncommitted_nodes_answer_empty_not_error() {
        let db = UpdatableDatabase::from_text("a p b\n").unwrap();
        db.insert("zzz", "p", "a"); // interns zzz, not committed
        assert_eq!(db.query("zzz", "p", "?y").unwrap(), vec![]);
        assert!(matches!(
            db.query("never-seen", "p", "?y"),
            Err(DbError::UnknownNode(_))
        ));
        db.commit();
        assert_eq!(
            db.query("zzz", "p", "?y").unwrap(),
            vec![("zzz".into(), "a".into())]
        );
    }

    #[test]
    fn compaction_preserves_answers_and_names() {
        let db = UpdatableDatabase::from_text("a p b\nb p c\nc q a\n")
            .unwrap()
            .with_auto_compact_ratio(None);
        db.delete("b", "p", "c");
        db.insert("c", "p", "a");
        db.commit();
        let before = db.query("?x", "p+", "?y").unwrap();
        db.compact();
        assert_eq!(db.query("?x", "p+", "?y").unwrap(), before);
        assert!(db.store().snapshot().delta.is_empty());
    }

    #[test]
    fn ntriples_delta_loading() {
        let db = UpdatableDatabase::from_ntriples("<a> <p> <b> .\n<b> <p> <c> .\n").unwrap();
        let n = db.insert_ntriples("<c> <p> <d> .\n").unwrap();
        assert_eq!(n, 1);
        let n = db
            .delete_ntriples("<a> <p> <b> .\n<x> <p> <y> .\n")
            .unwrap();
        assert_eq!(n, 1); // unknown names cannot be live
        db.commit();
        assert_eq!(
            db.query("?x", "<p>", "?y").unwrap(),
            vec![("<b>".into(), "<c>".into()), ("<c>".into(), "<d>".into())]
        );
    }

    #[test]
    fn save_load_roundtrip_with_delta() {
        let dir = std::env::temp_dir().join(format!("rpq-updatable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.db");
        let db = UpdatableDatabase::from_text("a p b\nb p c\n")
            .unwrap()
            .with_auto_compact_ratio(None);
        db.insert("c", "p", "d");
        db.delete("a", "p", "b");
        db.commit();
        db.save(&path).unwrap();
        let back = UpdatableDatabase::load(&path).unwrap();
        assert_eq!(back.epoch(), 1);
        assert_eq!(
            back.query("?x", "p+", "?y").unwrap(),
            db.query("?x", "p+", "?y").unwrap()
        );
        // Compacted state saves in the immutable format.
        db.compact();
        db.save(&path).unwrap();
        let plain = RpqDatabase::load(&path).unwrap();
        assert_eq!(
            plain.query("?x", "p+", "?y").unwrap(),
            db.query("?x", "p+", "?y").unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    /// Append-only dictionaries legitimately outgrow the committed
    /// graph — names interned by uncommitted triples, or nodes whose
    /// edges were committed and later deleted — and save/load must
    /// round-trip anyway (regression: both cases once produced files
    /// the loaders rejected with size-mismatch errors).
    #[test]
    fn oversized_dictionaries_survive_save_load() {
        let dir = std::env::temp_dir().join(format!("rpq-updatable-dicts-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Case 1: a brand-new predicate interned but never committed.
        let path = dir.join("pred.db");
        let db = UpdatableDatabase::from_text("a p b\n")
            .unwrap()
            .with_auto_compact_ratio(None);
        db.insert("a", "newpred", "b"); // buffered only
        db.save(&path).unwrap();
        let back = UpdatableDatabase::load(&path).unwrap();
        assert_eq!(
            back.query("?x", "p", "?y").unwrap(),
            vec![("a".into(), "b".into())]
        );

        // Case 2: new nodes interned, committed, then deleted away — the
        // delta cancels to empty while the dicts keep the names; the
        // saved file must stay loadable (updatable format, since the
        // immutable one requires exact dictionary sizes).
        let path = dir.join("node.db");
        let db = UpdatableDatabase::from_text("a p b\n")
            .unwrap()
            .with_auto_compact_ratio(None);
        db.insert("x", "p", "y");
        db.commit();
        db.delete("x", "p", "y");
        db.commit();
        assert!(db.store().snapshot().delta.is_empty());
        db.save(&path).unwrap();
        let back = UpdatableDatabase::load(&path).unwrap();
        assert_eq!(
            back.query("?x", "p", "?y").unwrap(),
            vec![("a".into(), "b".into())]
        );
        // The vanished node's name still resolves — to an empty answer.
        assert_eq!(back.query("x", "p", "?y").unwrap(), vec![]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serves_live_updates_through_the_server() {
        use rpq_server::{RpqServer, ServerConfig};
        // Writers keep their own `Arc` handle; the server shares it.
        let db = Arc::new(UpdatableDatabase::from_text("a p b\nb p c\n").unwrap());
        let server = RpqServer::start(
            Arc::clone(&db) as Arc<dyn rpq_server::QuerySource>,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let answer = server.query_blocking("a", "p+", "?y").unwrap();
        assert_eq!(
            server.resolve_pairs(&answer),
            vec![("a".into(), "b".into()), ("a".into(), "c".into())]
        );
        // Commit through the writer handle; later queries see the new
        // epoch, and the metrics JSON reports the commit.
        db.insert("c", "p", "d");
        db.commit();
        let answer = server.query_blocking("a", "p+", "?y").unwrap();
        assert_eq!(
            server.resolve_pairs(&answer),
            vec![
                ("a".into(), "b".into()),
                ("a".into(), "c".into()),
                ("a".into(), "d".into())
            ]
        );
        let metrics = server.metrics_json();
        assert!(metrics.contains("\"commits\":1"), "{metrics}");
        server.shutdown();
    }

    #[test]
    fn database_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UpdatableDatabase>();
    }
}
