#![warn(missing_docs)]

//! # ring-rpq — time- and space-efficient regular path queries on graphs
//!
//! A Rust implementation of *"Time- and Space-Efficient Regular Path
//! Queries on Graphs"* (Arroyuelo, Hogan, Navarro, Rojas-Ledesma;
//! arXiv:2111.04556): 2RPQ evaluation directly on the **ring**, a
//! BWT-based succinct graph index, by combining backward search, wavelet-
//! matrix range operations and the bit-parallel simulation of Glushkov
//! automata.
//!
//! This crate is the façade: it re-exports the workspace crates and offers
//! [`RpqDatabase`], a name-level convenience API. For id-level control use
//! the re-exported building blocks:
//!
//! * [`succinct`] — bit vectors, rank/select, wavelet trees and matrices;
//! * [`automata`] — path expressions, parsing, Glushkov bit-parallelism;
//! * [`ring`] — the succinct graph index (and a Leapfrog-TrieJoin);
//! * [`rpq_core`] — the RPQ engine itself;
//! * [`baselines`] — classical competitor engines;
//! * [`workload`] — synthetic Wikidata-like benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use ring_rpq::RpqDatabase;
//!
//! // One `subject predicate object` triple per line.
//! let db = RpqDatabase::from_text(
//!     "baquedano l5 bellas_artes
//!      bellas_artes l5 santa_ana
//!      santa_ana bus u_de_chile",
//! ).unwrap();
//!
//! // Stations reachable from Baquedano by l5+ then one bus hop:
//! let pairs = db.query("baquedano", "l5+/bus", "?y").unwrap();
//! assert_eq!(pairs, vec![("baquedano".to_string(), "u_de_chile".to_string())]);
//!
//! // Two-way expressions work too (^ inverts a step):
//! let back = db.query("?x", "^l5", "baquedano").unwrap();
//! assert_eq!(back, vec![("bellas_artes".to_string(), "baquedano".to_string())]);
//! ```

pub use automata;
pub use baselines;
pub use ring;
pub use rpq_core;
pub use rpq_server;
pub use succinct;
pub use workload;

pub mod ingest;
mod updatable;
pub use rpq_core::{LevelSample, QueryProfile};
pub use updatable::UpdatableDatabase;

use automata::parser::{self, LabelResolver};
use ring::mapped::OpenMode;
use ring::ring::RingOptions;
use ring::{Dict, Graph, Id, Ring, Triple};
use rpq_core::{EngineOptions, QueryOutput, RpqEngine, RpqQuery, SourceSnapshot, Term};
use std::sync::{Arc, OnceLock};
use succinct::ResidentMode;

/// Errors from the name-level API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// The graph text was malformed.
    Graph(String),
    /// The path expression failed to parse.
    Parse(parser::ParseError),
    /// An endpoint names an unknown node.
    UnknownNode(String),
    /// Query evaluation failed.
    Query(rpq_core::QueryError),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Graph(m) => write!(f, "graph error: {m}"),
            DbError::Parse(e) => write!(f, "expression error: {e}"),
            DbError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            DbError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

/// A ready-to-query RPQ database: a ring index plus the dictionaries
/// mapping names to ids.
///
/// Endpoints are node names or variables (any token starting with `?`).
/// Path expressions use the SPARQL-property-path-flavoured syntax of
/// [`automata::parser`]: `/` concatenation, `|` alternation, `*`/`+`/`?`
/// closures, `^p` inverse steps, `!(p|q)` negated label sets.
pub struct RpqDatabase {
    /// Lazily materialized: a database opened from a mapped `RRPQM01`
    /// file reconstructs the base graph from the ring only if asked.
    graph: OnceLock<Graph>,
    ring: Arc<Ring>,
    /// Present when the database was opened from (or built as) a sharded
    /// index; queries then scatter-gather across the parts. `ring` is
    /// the first shard in that case.
    shards: Option<rpq_core::ShardedSource>,
    nodes: Dict,
    preds: Dict,
    open_info: OpenInfo,
}

/// How a database was brought into memory — cold-start observability
/// for [`RpqDatabase::open`] (exported by the server metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenInfo {
    /// Wall time of the open call, microseconds.
    pub open_us: u64,
    /// Whether the index payload lives in a kernel mapping or on the heap.
    pub resident: ResidentMode,
    /// Bytes held by the kernel mapping (0 in heap mode).
    pub mapped_bytes: u64,
}

impl Default for OpenInfo {
    fn default() -> Self {
        Self {
            open_us: 0,
            resident: ResidentMode::Heap,
            mapped_bytes: 0,
        }
    }
}

struct DictResolver<'a> {
    preds: &'a Dict,
    ring: &'a Ring,
}

impl LabelResolver for DictResolver<'_> {
    fn resolve(&self, name: &str) -> Option<Id> {
        self.preds.get(name)
    }

    fn inverse(&self, label: Id) -> Id {
        self.ring.inverse_label(label)
    }
}

impl RpqDatabase {
    /// Builds a database from whitespace triple text (see
    /// [`ring::Graph::parse_text`]).
    pub fn from_text(text: &str) -> Result<Self, DbError> {
        let (graph, nodes, preds) = Graph::parse_text(text).map_err(DbError::Graph)?;
        Ok(Self::from_parts(graph, nodes, preds))
    }

    /// Builds a database from N-Triples text (see [`ring::ntriples`]):
    /// `<s> <p> <o> .` lines, RDF literals and blank nodes included.
    /// Node names are the dictionary keys of the parsed terms, so IRIs
    /// keep their brackets: query with `"<alice>"`, not `"alice"`.
    pub fn from_ntriples(text: &str) -> Result<Self, DbError> {
        let (graph, nodes, preds) =
            ring::ntriples::parse_ntriples(text).map_err(|e| DbError::Graph(e.to_string()))?;
        Ok(Self::from_parts(graph, nodes, preds))
    }

    /// Reads a graph file, picking the parser by extension: `.nt` is
    /// N-Triples (streamed in bounded chunks and parsed chunk-parallel,
    /// see [`ingest`] — the file is never held in memory whole),
    /// everything else whitespace triple text.
    pub fn from_graph_file(path: &std::path::Path) -> Result<Self, DbError> {
        if path
            .extension()
            .is_some_and(|x| x.eq_ignore_ascii_case("nt"))
        {
            let (graph, nodes, preds) = ingest::load_ntriples_file(path).map_err(DbError::Graph)?;
            Ok(Self::from_parts(graph, nodes, preds))
        } else {
            let text = std::fs::read_to_string(path)
                .map_err(|e| DbError::Graph(format!("reading {}: {e}", path.display())))?;
            Self::from_text(&text)
        }
    }

    /// Builds a database from pre-encoded parts.
    pub fn from_parts(graph: Graph, nodes: Dict, preds: Dict) -> Self {
        let ring = Arc::new(Ring::build(&graph, RingOptions::default()));
        Self {
            graph: OnceLock::from(graph),
            ring,
            shards: None,
            nodes,
            preds,
            open_info: OpenInfo::default(),
        }
    }

    /// Converts this immutable database into an [`UpdatableDatabase`]
    /// accepting live inserts, deletes, commits and compactions.
    pub fn into_updatable(self) -> UpdatableDatabase {
        UpdatableDatabase::from_database(self)
    }

    pub(crate) fn into_raw_parts(mut self) -> (Graph, Arc<Ring>, Dict, Dict) {
        self.graph();
        let graph = self.graph.into_inner().expect("graph just materialized");
        // Downstream mutators (the updatable store) intern names; hand
        // them the heap dictionary form up front. A sharded database
        // carries only per-shard rings, so the updatable store gets a
        // freshly built monolithic one.
        let ring = if self.shards.is_some() {
            Arc::new(Ring::build(&graph, RingOptions::default()))
        } else {
            self.ring
        };
        self.nodes.make_owned();
        self.preds.make_owned();
        (graph, ring, self.nodes, self.preds)
    }

    pub(crate) fn from_built_parts(
        graph: Graph,
        ring: Arc<Ring>,
        nodes: Dict,
        preds: Dict,
    ) -> Self {
        Self {
            graph: OnceLock::from(graph),
            ring,
            shards: None,
            nodes,
            preds,
            open_info: OpenInfo::default(),
        }
    }

    /// The underlying ring index.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The underlying graph. Databases opened from a mapped `RRPQM01`
    /// file carry no graph payload; the first call reconstructs it from
    /// the ring (the ring stores `G↔`, so decoding keeps the base
    /// triples `p < n_preds_base` only).
    pub fn graph(&self) -> &Graph {
        self.graph.get_or_init(|| {
            let base = self.ring.n_preds_base();
            let triples: Vec<Triple> = match &self.shards {
                // Shards partition the base triples, so their union is
                // exact (no dedup needed).
                Some(src) => src
                    .parts()
                    .iter()
                    .flat_map(|p| p.ring.iter_triples().filter(|t| t.p < base))
                    .collect(),
                None => self.ring.iter_triples().filter(|t| t.p < base).collect(),
            };
            Graph::new(triples, self.ring.n_nodes(), base)
        })
    }

    /// How this database was opened (wall time, heap vs mmap residency,
    /// mapped bytes). Databases built in memory report the default:
    /// heap-resident, zero mapped bytes.
    pub fn open_info(&self) -> OpenInfo {
        self.open_info
    }

    /// The node dictionary.
    pub fn nodes(&self) -> &Dict {
        &self.nodes
    }

    /// The predicate dictionary.
    pub fn preds(&self) -> &Dict {
        &self.preds
    }

    /// Parses endpoints and expression into an id-level [`RpqQuery`].
    pub fn parse_query(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
    ) -> Result<RpqQuery, DbError> {
        let resolver = DictResolver {
            preds: &self.preds,
            ring: &self.ring,
        };
        let e = parser::parse(expr, &resolver).map_err(DbError::Parse)?;
        let term = |name: &str| -> Result<Term, DbError> {
            if name.starts_with('?') {
                Ok(Term::Var)
            } else {
                self.nodes
                    .get(name)
                    .map(Term::Const)
                    .ok_or_else(|| DbError::UnknownNode(name.to_string()))
            }
        };
        Ok(RpqQuery::new(term(subject)?, e, term(object)?))
    }

    /// Evaluates a query, returning name pairs sorted lexicographically.
    pub fn query(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
    ) -> Result<Vec<(String, String)>, DbError> {
        let out = self.query_with(subject, expr, object, &EngineOptions::default())?;
        let mut named: Vec<(String, String)> = out
            .pairs
            .iter()
            .map(|&(s, o)| {
                (
                    self.nodes.name(s).to_string(),
                    self.nodes.name(o).to_string(),
                )
            })
            .collect();
        named.sort();
        Ok(named)
    }

    /// Evaluates with explicit options, returning the raw id-level output.
    pub fn query_with(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
        opts: &EngineOptions,
    ) -> Result<QueryOutput, DbError> {
        let q = self.parse_query(subject, expr, object)?;
        match &self.shards {
            Some(src) => RpqEngine::over(src).evaluate(&q, opts),
            None => RpqEngine::new(&self.ring).evaluate(&q, opts),
        }
        .map_err(DbError::Query)
    }

    /// Explains the evaluation plan for a query (route, direction,
    /// cardinalities, split choice) without running it — the human-
    /// readable rendering of [`Self::explain_plan`].
    pub fn explain(&self, subject: &str, expr: &str, object: &str) -> Result<String, DbError> {
        self.explain_plan(subject, expr, object)
            .map(|plan| plan.to_string())
    }

    /// The structured plan behind [`Self::explain`]: the decision of the
    /// shared cost-based planner — exactly what [`Self::query`] will
    /// execute, since both consult `rpq_core::planner`. Render it with
    /// [`rpq_core::explain::QueryPlan::to_json`] for stable
    /// machine-readable output (the CLI's `--explain`).
    pub fn explain_plan(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
    ) -> Result<rpq_core::explain::QueryPlan, DbError> {
        let q = self.parse_query(subject, expr, object)?;
        match &self.shards {
            Some(src) => rpq_core::explain::explain_source_with(src, &q, &EngineOptions::default()),
            None => rpq_core::explain::explain(&self.ring, &q),
        }
        .map_err(DbError::Query)
    }

    /// Evaluates many queries concurrently (`n_threads` workers, dynamic
    /// load balancing); results come back in input order.
    pub fn query_batch(
        &self,
        queries: &[rpq_core::RpqQuery],
        opts: &EngineOptions,
        n_threads: usize,
    ) -> Vec<Result<QueryOutput, rpq_core::QueryError>> {
        match &self.shards {
            Some(src) => rpq_core::parallel::evaluate_batch_over(src, queries, opts, n_threads),
            None => rpq_core::parallel::evaluate_batch(&self.ring, queries, opts, n_threads),
        }
    }

    /// Persists the database (graph, dictionaries and the prebuilt ring)
    /// to a file; [`Self::load`] restores it without re-indexing. The
    /// write is atomic (temp file + fsync + rename) and the `RRPQDB02`
    /// format carries a whole-file CRC32C footer verified on load.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        use succinct::io::Persist;
        ring::durable::atomic_write(path, |w| {
            let mut cw = succinct::checksum::CrcWriter::new(w);
            std::io::Write::write_all(&mut cw, b"RRPQDB02")?;
            self.graph().write_to(&mut cw)?;
            self.nodes.write_to(&mut cw)?;
            self.preds.write_to(&mut cw)?;
            self.ring.write_to(&mut cw)?;
            ring::durable::finish_footer(&mut cw)
        })
        .map(|_| ())
    }

    /// Persists the database to the aligned, mappable `RRPQM01` format
    /// (see [`ring::mapped`]). Unlike [`Self::save`], the file is usable
    /// *in place*: [`Self::open`] maps it and answers queries without
    /// deserializing, so cold starts cost page faults instead of a full
    /// index rebuild. Returns the total bytes written.
    pub fn save_mapped(&self, path: &std::path::Path) -> std::io::Result<u64> {
        ring::mapped::write_index(path, &self.ring, &self.nodes, &self.preds)
    }

    /// Opens a persisted database, dispatching on the file magic:
    /// `RRPQM01` files ([`Self::save_mapped`]) are mapped zero-copy,
    /// `RRPQDB01` files ([`Self::save`]) are deserialized to the heap.
    /// [`Self::open_info`] reports which path was taken and how long it
    /// took.
    pub fn open(path: &std::path::Path) -> std::io::Result<Self> {
        Self::open_with(path, OpenMode::Auto)
    }

    /// [`Self::open`] with an explicit residency request for mapped
    /// files: [`OpenMode::Mmap`] requires a real kernel mapping,
    /// [`OpenMode::Heap`] forces an aligned heap read (the differential-
    /// testing path). Stream-format files always load to the heap.
    pub fn open_with(path: &std::path::Path, mode: OpenMode) -> std::io::Result<Self> {
        if ring::sharded::is_sharded_dir(path) {
            return Self::open_sharded(path, mode);
        }
        let t0 = std::time::Instant::now();
        let orphans = ring::durable::cleanup_orphans(path);
        if orphans > 0 {
            eprintln!(
                "recovery: removed {orphans} orphaned temp file(s) from an interrupted save of {}",
                path.display()
            );
        }
        if ring::mapped::is_mapped_file(path) {
            let idx = ring::mapped::open_index(path, mode)?;
            Ok(Self {
                graph: OnceLock::new(),
                ring: Arc::new(idx.ring),
                shards: None,
                nodes: idx.nodes,
                preds: idx.preds,
                open_info: OpenInfo {
                    open_us: t0.elapsed().as_micros() as u64,
                    resident: idx.resident,
                    mapped_bytes: idx.mapped_bytes,
                },
            })
        } else {
            let mut db = Self::load(path)?;
            db.open_info.open_us = t0.elapsed().as_micros() as u64;
            Ok(db)
        }
    }

    /// Starts a concurrent query server over this database (see
    /// [`rpq_server::RpqServer`]): a worker pool sharing the ring, with
    /// plan/result caches, admission control and metrics.
    ///
    /// ```
    /// use ring_rpq::RpqDatabase;
    /// use ring_rpq::rpq_server::ServerConfig;
    ///
    /// let db = RpqDatabase::from_text("a p b\nb p c\n").unwrap();
    /// let server = db
    ///     .into_server(ServerConfig { workers: 2, ..ServerConfig::default() })
    ///     .unwrap();
    /// let answer = server.query_blocking("a", "p+", "?y").unwrap();
    /// assert_eq!(server.resolve_pairs(&answer), vec![
    ///     ("a".to_string(), "b".to_string()),
    ///     ("a".to_string(), "c".to_string()),
    /// ]);
    /// server.shutdown();
    /// ```
    pub fn into_server(
        self,
        config: rpq_server::ServerConfig,
    ) -> Result<rpq_server::RpqServer, rpq_server::RpqError> {
        rpq_server::RpqServer::start(std::sync::Arc::new(self), config)
    }

    /// Loads a database persisted with [`Self::save`]. `RRPQDB02` files
    /// are verified against their checksum footer; legacy `RRPQDB01`
    /// files still load, with a warning that they carry no integrity
    /// protection.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        use succinct::io::{bad_data, Persist};
        let file = ring::durable::FaultReader::new(std::fs::File::open(path)?);
        let mut f = succinct::checksum::CrcReader::new(std::io::BufReader::new(file));
        let mut magic = [0u8; 8];
        std::io::Read::read_exact(&mut f, &mut magic)?;
        let checksummed = match &magic {
            b"RRPQDB02" => true,
            b"RRPQDB01" => {
                eprintln!(
                    "warning: {} is format RRPQDB01 (no checksum footer); re-save to upgrade",
                    path.display()
                );
                false
            }
            _ => return Err(bad_data("not a ring-rpq database file")),
        };
        let graph = Graph::read_from(&mut f)?;
        let nodes = Dict::read_from(&mut f)?;
        let preds = Dict::read_from(&mut f)?;
        let ring = Ring::read_from(&mut f)?;
        if checksummed {
            ring::durable::verify_footer(&mut f, &path.display().to_string())?;
        }
        if nodes.len() as Id != graph.n_nodes() || preds.len() as Id != graph.n_preds() {
            return Err(bad_data("dictionary sizes do not match the graph"));
        }
        if ring.n_preds_base() != graph.n_preds() {
            return Err(bad_data("ring alphabet does not match the graph"));
        }
        Ok(Self {
            graph: OnceLock::from(graph),
            ring: Arc::new(ring),
            shards: None,
            nodes,
            preds,
            open_info: OpenInfo::default(),
        })
    }

    /// Persists the database as a **sharded** index directory: the base
    /// graph is partitioned by predicate (subject ranges for skewed
    /// predicates, see [`ring::sharded`]) into `n_shards` sub-rings,
    /// each written as a self-contained mappable `RRPQM01` file next to
    /// a checksummed `MANIFEST`. Returns total bytes written.
    pub fn save_sharded(&self, dir: &std::path::Path, n_shards: usize) -> std::io::Result<u64> {
        let idx =
            ring::sharded::ShardedIndex::build(self.graph(), n_shards, RingOptions::default());
        idx.save_dir(dir, &self.nodes, &self.preds)
    }

    /// Opens a sharded index directory ([`Self::save_sharded`]); queries
    /// scatter-gather across the shards and return exactly what the
    /// unsharded index would. [`Self::open_with`] dispatches here for
    /// directory paths, so callers rarely need this directly.
    pub fn open_sharded(dir: &std::path::Path, mode: OpenMode) -> std::io::Result<Self> {
        let t0 = std::time::Instant::now();
        ring::durable::cleanup_orphans(&dir.join(ring::sharded::MANIFEST_FILE));
        let opened = ring::sharded::open_dir(dir, mode)?;
        let resident = opened[0].resident;
        let mapped_bytes: u64 = opened.iter().map(|s| s.mapped_bytes).sum();
        let mut nodes = None;
        let mut preds = None;
        let mut rings = Vec::with_capacity(opened.len());
        for (i, idx) in opened.into_iter().enumerate() {
            if i == 0 {
                nodes = Some(idx.nodes);
                preds = Some(idx.preds);
            }
            rings.push(Arc::new(idx.ring));
        }
        let source = rpq_core::ShardedSource::new(rings);
        Ok(Self {
            graph: OnceLock::new(),
            ring: Arc::clone(&source.parts()[0].ring),
            shards: Some(source),
            nodes: nodes.expect("manifest guarantees >= 1 shard"),
            preds: preds.expect("manifest guarantees >= 1 shard"),
            open_info: OpenInfo {
                open_us: t0.elapsed().as_micros() as u64,
                resident,
                mapped_bytes,
            },
        })
    }

    /// Whether this database scatter-gathers over a sharded index.
    pub fn is_sharded(&self) -> bool {
        self.shards.is_some()
    }

    /// Number of shards backing this database (1 when unsharded).
    pub fn n_shards(&self) -> usize {
        self.shards.as_ref().map_or(1, |s| s.n_shards())
    }
}

/// An [`RpqDatabase`] is exactly what a server serves: the shared ring
/// plus the name dictionaries. All of it is immutable after
/// construction, so one instance backs any number of workers (every
/// snapshot is the same epoch-0 view).
impl rpq_server::QuerySource for RpqDatabase {
    fn snapshot(&self) -> SourceSnapshot {
        match &self.shards {
            Some(src) => src.snapshot(),
            None => SourceSnapshot::immutable(Arc::clone(&self.ring)),
        }
    }

    fn node_id(&self, name: &str) -> Option<Id> {
        self.nodes.get(name)
    }

    fn node_name(&self, id: Id) -> Option<String> {
        (id < self.nodes.len() as Id).then(|| self.nodes.name(id).to_string())
    }

    fn pred_id(&self, name: &str) -> Option<Id> {
        self.preds.get(name)
    }

    fn index_info(&self) -> Option<rpq_server::IndexStats> {
        Some(rpq_server::IndexStats {
            open_us: self.open_info.open_us,
            resident_mode: self.open_info.resident.as_str(),
            mapped_bytes: self.open_info.mapped_bytes,
        })
    }

    fn shard_stats(&self) -> Option<Vec<rpq_server::ShardStat>> {
        let src = self.shards.as_ref()?;
        Some(
            src.parts()
                .iter()
                .map(|p| rpq_server::ShardStat {
                    triples: p.ring.n_triples(),
                    bytes: p.ring.size_bytes(),
                    probes: p.probe_count(),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_roundtrip() {
        let db = RpqDatabase::from_text("a p b\nb p c\nc q a\n").unwrap();
        let got = db.query("a", "p+", "?y").unwrap();
        assert_eq!(
            got,
            vec![
                ("a".to_string(), "b".to_string()),
                ("a".to_string(), "c".to_string())
            ]
        );
        let got = db.query("?x", "p/q", "?y").unwrap();
        assert_eq!(got, vec![("b".to_string(), "a".to_string())]);
    }

    /// The server owns an `Arc<RpqDatabase>`; the whole database must be
    /// shareable across worker threads.
    #[test]
    fn database_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RpqDatabase>();
    }

    #[test]
    fn serves_queries_through_the_server_layer() {
        use rpq_server::ServerConfig;
        let db = RpqDatabase::from_text("a p b\nb p c\nc q a\n").unwrap();
        let server = db
            .into_server(ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            })
            .unwrap();
        let answer = server.query_blocking("a", "p+", "?y").unwrap();
        assert_eq!(
            server.resolve_pairs(&answer),
            vec![
                ("a".to_string(), "b".to_string()),
                ("a".to_string(), "c".to_string())
            ]
        );
        // Parse errors surface as the typed server error.
        assert!(matches!(
            server.query_blocking("a", "p/(", "?y"),
            Err(rpq_server::RpqError::Parse(_))
        ));
        server.shutdown();
    }

    #[test]
    fn mapped_save_open_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rpq-facade-mapped-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.rpqm");
        let db = RpqDatabase::from_text("a p b\nb p c\nc q a\n").unwrap();
        let bytes = db.save_mapped(&path).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        for mode in [OpenMode::Auto, OpenMode::Heap] {
            let back = RpqDatabase::open_with(&path, mode).unwrap();
            assert_eq!(
                back.query("a", "p+", "?y").unwrap(),
                db.query("a", "p+", "?y").unwrap(),
                "{mode:?}"
            );
            assert_eq!(
                back.query("?x", "^p/q", "?y").unwrap(),
                db.query("?x", "^p/q", "?y").unwrap()
            );
            // The lazily rebuilt graph matches the original.
            assert_eq!(back.graph().triples(), db.graph().triples());
            assert_eq!(back.open_info().mapped_bytes == 0, mode == OpenMode::Heap);
        }
        // `open` also dispatches on the stream format.
        let stream = dir.join("idx.rpqdb");
        db.save(&stream).unwrap();
        let back = RpqDatabase::open(&stream).unwrap();
        assert_eq!(back.open_info().resident, ResidentMode::Heap);
        assert_eq!(
            back.query("a", "p+", "?y").unwrap(),
            db.query("a", "p+", "?y").unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_database_converts_to_updatable() {
        let dir = std::env::temp_dir().join(format!("rpq-facade-upd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.rpqm");
        let db = RpqDatabase::from_text("a p b\nb p c\n").unwrap();
        db.save_mapped(&path).unwrap();
        let live = RpqDatabase::open(&path).unwrap().into_updatable();
        live.insert("c", "p", "d");
        live.commit();
        assert_eq!(
            live.query("a", "p+", "?y").unwrap(),
            vec![
                ("a".to_string(), "b".to_string()),
                ("a".to_string(), "c".to_string()),
                ("a".to_string(), "d".to_string()),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_save_open_matches_unsharded() {
        let dir = std::env::temp_dir().join(format!("rpq-facade-sharded-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut text = String::new();
        for i in 0..40u32 {
            text.push_str(&format!("n{i} p n{}\n", (i + 1) % 40));
            if i % 3 == 0 {
                text.push_str(&format!("n{i} q n{}\n", (i * 7 + 2) % 40));
            }
        }
        let db = RpqDatabase::from_text(&text).unwrap();
        db.save_sharded(&dir, 3).unwrap();

        let sharded = RpqDatabase::open(&dir).unwrap();
        assert!(sharded.is_sharded());
        assert_eq!(sharded.n_shards(), 3);
        for q in [("n0", "p+", "?y"), ("?x", "p/q", "?y"), ("?x", "^p", "n0")] {
            assert_eq!(
                sharded.query(q.0, q.1, q.2).unwrap(),
                db.query(q.0, q.1, q.2).unwrap(),
                "{q:?}"
            );
        }
        // The reconstructed graph is the exact base triple set.
        assert_eq!(sharded.graph().triples(), db.graph().triples());

        // Serving: the server scatter-gathers and exports per-shard rows.
        use rpq_server::{QuerySource, ServerConfig};
        let stats = QuerySource::shard_stats(&sharded).unwrap();
        assert_eq!(stats.len(), 3);
        assert_eq!(
            stats.iter().map(|s| s.triples).sum::<usize>(),
            2 * db.graph().len()
        );
        let server = sharded
            .into_server(ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            })
            .unwrap();
        let answer = server.query_blocking("n0", "p+", "?y").unwrap();
        assert_eq!(server.resolve_pairs(&answer).len(), 40);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_shard_directory_behaves_like_the_plain_index() {
        let dir = std::env::temp_dir().join(format!("rpq-facade-shard1-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let db = RpqDatabase::from_text("a p b\nb p c\nc q a\n").unwrap();
        db.save_sharded(&dir, 1).unwrap();
        let one = RpqDatabase::open(&dir).unwrap();
        assert!(one.is_sharded());
        assert_eq!(one.n_shards(), 1);
        assert_eq!(
            one.query("a", "p+", "?y").unwrap(),
            db.query("a", "p+", "?y").unwrap()
        );
        // Converting a sharded database to updatable rebuilds one ring.
        let live = one.into_updatable();
        live.insert("c", "p", "d");
        live.commit();
        assert!(live
            .query("a", "p+", "?y")
            .unwrap()
            .contains(&("a".to_string(), "d".to_string())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn facade_errors() {
        let db = RpqDatabase::from_text("a p b\n").unwrap();
        assert!(matches!(
            db.query("zzz", "p", "?y"),
            Err(DbError::UnknownNode(_))
        ));
        assert!(matches!(db.query("a", "p/(", "?y"), Err(DbError::Parse(_))));
        assert!(matches!(
            db.query("a", "nosuchpred", "?y"),
            Err(DbError::Parse(_))
        ));
        assert!(RpqDatabase::from_text("a b").is_err());
    }
}
