//! Streaming, chunk-parallel N-Triples ingest.
//!
//! [`load_ntriples_file`] reads a `.nt` file through a bounded window
//! instead of one giant `String`: the file is consumed in ~8 MiB chunks
//! cut at line boundaries, a *wave* of chunks is parsed concurrently on
//! the shared helper pool ([`rpq_core::parallel`]), and the per-chunk
//! local dictionaries are merged **in chunk order**, which reproduces
//! the exact ids a sequential [`ring::ntriples::parse_ntriples`] pass
//! would assign (first appearance of a name is in its first chunk, in
//! local first-appearance order). Peak transient memory is therefore
//! `O(wave × chunk)` for the text plus the output triples — never the
//! whole file — and the result is bit-identical to the in-memory parse.
//!
//! Errors keep absolute line numbers: every chunk remembers the line it
//! starts at, so a malformed triple deep in a multi-gigabyte file is
//! reported exactly as the sequential parser would.

use std::io::Read;
use std::path::Path;

use ring::ntriples::{merge_chunk, parse_ntriples_chunk, NtError};
use ring::{Dict, Graph, Id, Triple};
use rpq_core::parallel::{map_chunks_ordered, pool_capacity};

/// Target byte size of one parser chunk. Big enough that per-chunk
/// dictionary merging is negligible, small enough that a wave of them
/// keeps peak memory flat.
const CHUNK_BYTES: usize = 8 << 20;

/// Parses one wave of chunks concurrently and folds the results into
/// the global dictionaries in chunk order. Stops at the first malformed
/// chunk (pending speculative parses are discarded).
fn flush_wave(
    wave: &mut Vec<(usize, String)>,
    nodes: &mut Dict,
    preds: &mut Dict,
    triples: &mut Vec<Triple>,
) -> Result<(), NtError> {
    let mut first_err: Option<NtError> = None;
    map_chunks_ordered(
        wave,
        1,
        pool_capacity(),
        |_, xs| {
            let (first_line, text) = &xs[0];
            parse_ntriples_chunk(text, *first_line)
        },
        |res| match res {
            Ok(chunk) => {
                merge_chunk(&chunk, nodes, preds, triples);
                true
            }
            Err(e) => {
                first_err = Some(e);
                false
            }
        },
    );
    wave.clear();
    first_err.map_or(Ok(()), Err)
}

/// Streams an N-Triples *reader* into a graph and its dictionaries.
/// See [`load_ntriples_file`]; split out so tests and callers holding
/// non-file sources (sockets, decompressors) can reuse the machinery.
pub fn load_ntriples_reader(input: impl Read) -> Result<(Graph, Dict, Dict), String> {
    stream_with(input, CHUNK_BYTES)
}

fn stream_with(mut input: impl Read, chunk_bytes: usize) -> Result<(Graph, Dict, Dict), String> {
    let mut nodes = Dict::new();
    let mut preds = Dict::new();
    let mut triples: Vec<Triple> = Vec::new();
    // Waves sized to keep every helper busy while bounding resident
    // text at (wave × chunk) bytes.
    let wave_cap = (pool_capacity() + 1) * 2;
    let mut wave: Vec<(usize, String)> = Vec::with_capacity(wave_cap);
    let mut carry: Vec<u8> = Vec::new();
    let mut next_line = 1usize;
    loop {
        // Refill: the carried partial line plus up to CHUNK_BYTES more.
        let mut chunk = std::mem::take(&mut carry);
        let start = chunk.len();
        chunk.resize(start + chunk_bytes, 0);
        let mut filled = start;
        while filled < chunk.len() {
            let n = input
                .read(&mut chunk[filled..])
                .map_err(|e| format!("reading input: {e}"))?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        let eof = filled < chunk.len();
        chunk.truncate(filled);
        // Cut at the last newline ('\n' never occurs inside a UTF-8
        // multi-byte sequence, so whole-line chunks are UTF-8-safe);
        // the tail carries over into the next read.
        let split = if eof {
            chunk.len()
        } else {
            // A line longer than the window: carry everything and keep
            // reading until its newline arrives.
            chunk.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1)
        };
        carry = chunk.split_off(split);
        if !chunk.is_empty() {
            let text = String::from_utf8(chunk)
                .map_err(|_| format!("line {next_line}: input is not valid UTF-8"))?;
            let first_line = next_line;
            next_line += text.lines().count();
            wave.push((first_line, text));
        }
        if wave.len() >= wave_cap || (eof && !wave.is_empty()) {
            flush_wave(&mut wave, &mut nodes, &mut preds, &mut triples)
                .map_err(|e| e.to_string())?;
        }
        if eof {
            break;
        }
    }
    let graph = Graph::new(triples, nodes.len() as Id, preds.len() as Id);
    Ok((graph, nodes, preds))
}

/// Streams an N-Triples file into a graph and its dictionaries with
/// bounded memory and chunk-parallel parsing. Equivalent to
/// `ring::ntriples::parse_ntriples(&std::fs::read_to_string(path)?)` —
/// same graph, same ids, same error messages — without ever holding the
/// whole file in memory.
pub fn load_ntriples_file(path: &Path) -> Result<(Graph, Dict, Dict), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    load_ntriples_reader(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nt_fixture(n: usize) -> String {
        let mut text = String::new();
        for i in 0..n {
            text.push_str(&format!(
                "<s{}> <p{}> <o{}> .\n",
                i % 97,
                i % 7,
                (i * 31) % 113
            ));
        }
        text
    }

    #[test]
    fn streaming_matches_in_memory_parse() {
        let text = nt_fixture(1000);
        let (g1, n1, p1) = ring::ntriples::parse_ntriples(&text).unwrap();
        // Tiny windows force many chunks, carried partial lines, and
        // multiple waves — the full streaming machinery.
        for chunk_bytes in [64, 257, 4096, CHUNK_BYTES] {
            let (g2, n2, p2) = stream_with(text.as_bytes(), chunk_bytes).unwrap();
            assert_eq!(g1.triples(), g2.triples(), "chunk={chunk_bytes}");
            assert_eq!(g1.n_nodes(), g2.n_nodes());
            assert_eq!(g1.n_preds(), g2.n_preds());
            let names1: Vec<&str> = n1.iter().map(|(_, n)| n).collect();
            let names2: Vec<&str> = n2.iter().map(|(_, n)| n).collect();
            assert_eq!(names1, names2, "node ids must match the sequential parse");
            let preds1: Vec<&str> = p1.iter().map(|(_, n)| n).collect();
            let preds2: Vec<&str> = p2.iter().map(|(_, n)| n).collect();
            assert_eq!(preds1, preds2);
        }
    }

    #[test]
    fn line_longer_than_the_window_still_parses() {
        let long = format!("<s{}> <p> <o> .\n<a> <p> <b> .\n", "x".repeat(500));
        let (g, n, _) = stream_with(long.as_bytes(), 64).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn errors_report_absolute_lines() {
        let mut text = nt_fixture(10);
        text.push_str("<s> <p> .\n"); // line 11: missing object
        for chunk_bytes in [64, CHUNK_BYTES] {
            let err = stream_with(text.as_bytes(), chunk_bytes).unwrap_err();
            assert!(err.contains("line 11"), "chunk={chunk_bytes}: {err}");
        }
    }

    #[test]
    fn empty_input_is_an_empty_graph() {
        let (g, n, p) = load_ntriples_reader(&b""[..]).unwrap();
        assert!(g.is_empty());
        assert!(n.is_empty());
        assert!(p.is_empty());
    }
}
