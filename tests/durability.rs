//! Durability suite over the name-level façade: WAL'd commits survive
//! a crash (reopen replays them), interrupted saves leave the previous
//! snapshot bytes untouched, checksum-less v1 files still load,
//! bit-flipped snapshots are detected, and a drain on a durable server
//! checkpoints the source.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use ring::durable::{arm, disarm, IoPolicy};
use ring_rpq::UpdatableDatabase;

/// Fault-injection state is process-global: serialize every test that
/// arms a policy (and any test an armed policy could bleed into).
static FAULTS: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    FAULTS.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rpq_durab_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const BASE: &str = "a p b\nb p c\nc q a\n";

/// Name-level oracle: every (subject, object) edge per predicate,
/// stable across reopen even though internal ids may be re-interned.
fn edges(db: &UpdatableDatabase) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for pred in ["p", "q"] {
        for (s, o) in db.query("?x", pred, "?y").unwrap() {
            out.push((s, pred.to_string(), o));
        }
    }
    out.sort();
    out
}

fn fresh_saved(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join(name);
    let db = UpdatableDatabase::from_text(BASE).unwrap();
    db.save(&path).unwrap();
    path
}

/// Committed-but-never-saved updates come back on reopen: the WAL is
/// the only place they exist, and replay restores them.
#[test]
fn walled_commits_survive_a_crash() {
    let _guard = lock_faults();
    let dir = tmpdir("replay");
    let path = fresh_saved(&dir, "db.rpq");

    let db = UpdatableDatabase::open_durable(&path).unwrap();
    assert!(db.is_durable());
    db.insert("d", "p", "a");
    db.delete("c", "q", "a");
    let epoch = db.commit();
    db.insert("e", "q", "b");
    db.commit();
    let want = edges(&db);
    db.insert("f", "p", "f"); // pending, never committed: must NOT survive
    drop(db); // crash: no save, no checkpoint

    let revived = UpdatableDatabase::open_durable(&path).unwrap();
    assert_eq!(edges(&revived), want);
    assert!(revived.epoch() >= epoch);
    // The replayed log keeps protecting new commits.
    revived.insert("g", "p", "a");
    revived.commit();
    let want2 = edges(&revived);
    drop(revived);
    let again = UpdatableDatabase::open_durable(&path).unwrap();
    assert_eq!(edges(&again), want2);
}

/// A checkpoint after compaction writes the *immutable* format, which
/// carries no epoch field and reloads at 0 — the rotated WAL must base
/// itself on that persisted epoch, not the in-memory one, or the next
/// open rejects the log as belonging to a different index.
#[test]
fn checkpoint_after_compaction_stays_openable() {
    let _guard = lock_faults();
    let dir = tmpdir("ckpt_compact");
    let path = fresh_saved(&dir, "db.rpq");

    let db = UpdatableDatabase::open_durable(&path).unwrap();
    db.insert("d", "p", "e");
    db.commit();
    db.compact();
    db.checkpoint().unwrap();
    let want = edges(&db);
    drop(db);

    let wal = ring::wal::Wal::inspect(&UpdatableDatabase::wal_path(&path)).unwrap();
    assert_eq!(
        wal.base_epoch, 0,
        "an immutable-format snapshot persists epoch 0; the WAL must match"
    );
    let back = UpdatableDatabase::open_durable(&path)
        .expect("snapshot + rotated WAL must agree on the base epoch");
    assert_eq!(edges(&back), want);
}

/// A checkpoint rotates the WAL: reopen after it replays nothing and
/// still sees every update (now in the snapshot).
#[test]
fn checkpoint_rotates_the_wal() {
    let _guard = lock_faults();
    let dir = tmpdir("checkpoint");
    let path = fresh_saved(&dir, "db.rpq");

    let db = UpdatableDatabase::open_durable(&path).unwrap();
    db.insert("d", "p", "e");
    db.commit();
    let epoch = db.checkpoint().unwrap();
    assert_eq!(epoch, db.epoch());
    let want = edges(&db);
    drop(db);

    let wal = ring::wal::Wal::inspect(&UpdatableDatabase::wal_path(&path)).unwrap();
    assert_eq!(wal.base_epoch, epoch, "WAL must be rebased on the snapshot");
    assert_eq!(wal.op_count(), 0, "checkpointed ops must leave the WAL");
    assert_eq!(
        edges(&UpdatableDatabase::open_durable(&path).unwrap()),
        want
    );
}

/// Regression for the pre-atomic-save bug: an IO error mid-save must
/// leave the previous snapshot bytes byte-for-byte intact.
#[test]
fn failed_save_preserves_old_bytes() {
    let _guard = lock_faults();
    let dir = tmpdir("oldbytes");
    let path = fresh_saved(&dir, "db.rpq");
    let before = std::fs::read(&path).unwrap();

    let db = UpdatableDatabase::load(&path).unwrap();
    db.insert("zz", "p", "zz");
    db.commit();
    // Sweep every write-fault index the save actually reaches (writes
    // abort before the rename, so the published file must not move).
    let mut n = 0u64;
    let mut fired_any = false;
    loop {
        arm(IoPolicy {
            fail_write: Some(n),
            ..IoPolicy::default()
        });
        let res = db.save(&path);
        let fired = disarm();
        if !fired {
            res.unwrap();
            break;
        }
        fired_any = true;
        assert!(res.is_err(), "save succeeded despite injected write fault");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "interrupted save (write fault {n}) mutated the published file"
        );
        n += 1;
        assert!(n < 1000, "write-fault sweep did not terminate");
    }
    assert!(fired_any, "no write fault ever fired: injection is dead");
    // And the published file still loads.
    UpdatableDatabase::load(&path).unwrap();
}

/// Orphaned temp files from a crashed save are swept on durable open.
#[test]
fn open_durable_cleans_orphaned_temp_files() {
    let _guard = lock_faults();
    let dir = tmpdir("orphan");
    let path = fresh_saved(&dir, "db.rpq");
    let orphan = dir.join("db.rpq.12345.7.tmp");
    std::fs::write(&orphan, b"half a snapshot").unwrap();

    let db = UpdatableDatabase::open_durable(&path).unwrap();
    assert!(!orphan.exists(), "orphaned temp file survived open_durable");
    drop(db);
}

/// Checksum-less v1 stream files (same payload, `RRPQDU01`/`RRPQDB01`
/// magic, no footer) still load — with a warning, not an error.
#[test]
fn v1_files_without_checksums_still_load() {
    let _guard = lock_faults();
    let dir = tmpdir("v1compat");
    let path = dir.join("db.rpq");
    // A committed delta forces the *updatable* stream format.
    let fresh = UpdatableDatabase::from_text(BASE).unwrap();
    fresh.insert("d", "p", "e");
    fresh.commit();
    fresh.save(&path).unwrap();
    let v2 = std::fs::read(&path).unwrap();
    assert_eq!(&v2[..8], b"RRPQDU02");

    // v1 image: v1 magic, same payload, no 16-byte checksum footer.
    let mut v1 = v2.clone();
    v1[..8].copy_from_slice(b"RRPQDU01");
    v1.truncate(v2.len() - 16);
    let v1_path = dir.join("old.rpq");
    std::fs::write(&v1_path, &v1).unwrap();

    let old = UpdatableDatabase::load(&v1_path).unwrap();
    let new = UpdatableDatabase::load(&path).unwrap();
    assert_eq!(edges(&old), edges(&new));

    // Re-saving upgrades to the checksummed format.
    old.save(&v1_path).unwrap();
    assert_eq!(&std::fs::read(&v1_path).unwrap()[..8], b"RRPQDU02");
}

/// Killing the WAL append under `commit` must not lose acknowledged
/// state: the commit reports failure (epoch unchanged) and the ops stay
/// pending, so a later commit retries them; reopen sees old or new.
#[test]
fn faulted_commit_is_old_or_new() {
    let _guard = lock_faults();
    let dir = tmpdir("commitfault");
    let path = fresh_saved(&dir, "db.rpq");

    for category in ["write", "short", "fsync"] {
        let sub = dir.join(category);
        std::fs::create_dir_all(&sub).unwrap();
        let db_path = sub.join("db.rpq");
        std::fs::copy(&path, &db_path).unwrap();
        let mut n = 0u64;
        loop {
            let db = UpdatableDatabase::open_durable(&db_path).unwrap();
            let before = edges(&db);
            let epoch_before = db.epoch();
            // The post-state if the commit (fully or partially) lands:
            // e.g. the WAL frame can hit the disk even when its fsync
            // reports failure, and replay then legitimately applies it.
            let after = {
                let mut v = before.clone();
                v.push(("new".into(), "p".into(), "node".into()));
                v.sort();
                v
            };
            db.insert("new", "p", "node");
            arm(match category {
                "write" => IoPolicy {
                    fail_write: Some(n),
                    ..IoPolicy::default()
                },
                "short" => IoPolicy {
                    short_write: Some(n),
                    ..IoPolicy::default()
                },
                _ => IoPolicy {
                    fail_fsync: Some(n),
                    ..IoPolicy::default()
                },
            });
            let res = db.commit_durable();
            let fired = disarm();
            drop(db); // crash
            let revived = UpdatableDatabase::open_durable(&db_path).unwrap();
            let revived_edges = edges(&revived);
            drop(revived);
            std::fs::remove_file(UpdatableDatabase::wal_path(&db_path)).ok();
            std::fs::copy(&path, &db_path).unwrap();
            if !fired {
                let epoch = res.unwrap_or_else(|e| panic!("[{category}:{n}] clean commit: {e}"));
                assert_eq!(epoch, epoch_before + 1, "[{category}:{n}]");
                assert_eq!(revived_edges, after, "[{category}:{n}] commit lost");
                break;
            }
            assert!(res.is_err(), "[{category}:{n}] fired fault but commit Ok");
            assert!(
                revived_edges == before || revived_edges == after,
                "[{category}:{n}] reopened state is neither old nor new"
            );
            n += 1;
            assert!(n < 1000, "[{category}] commit sweep did not terminate");
        }
    }
}

/// Deterministic xorshift64* — reproducible flips, no RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Seeded single-bit flips over a full `RRPQDU02` image: every flip is
/// either detected (typed load error) or harmless (loads with identical
/// answers). Never a panic, never silently wrong data.
#[test]
fn stream_bit_flip_fuzz_never_yields_wrong_answers() {
    let _guard = lock_faults();
    let dir = tmpdir("streamflip");
    let path = fresh_saved(&dir, "db.rpq");
    let bytes = std::fs::read(&path).unwrap();
    let expect = edges(&UpdatableDatabase::load(&path).unwrap());

    let mut flips: Vec<(usize, u8)> = Vec::new();
    for off in 0..64.min(bytes.len()) {
        for bit in 0..8u8 {
            flips.push((off, bit)); // magic + leading counts: exhaustive
        }
    }
    let mut rng = XorShift(0xD00D_F00D_1CDE_2022);
    for _ in 0..600 {
        flips.push(((rng.next() as usize) % bytes.len(), (rng.next() & 7) as u8));
    }

    let flip_path = dir.join("flipped.rpq");
    let mut detected = 0usize;
    for (off, bit) in flips {
        let mut mutated = bytes.clone();
        mutated[off] ^= 1 << bit;
        std::fs::write(&flip_path, &mutated).unwrap();
        match UpdatableDatabase::load(&flip_path) {
            Err(_) => detected += 1, // typed io::Error, no panic
            Ok(db) => assert_eq!(
                edges(&db),
                expect,
                "flip at byte {off} bit {bit} loaded with WRONG answers"
            ),
        }
    }
    assert!(detected > 0, "no flip detected: verification is dead code");
}

/// Draining a server over a durable source checkpoints it: the report
/// carries the epoch and the WAL is rotated.
#[test]
fn drain_checkpoints_a_durable_source() {
    let _guard = lock_faults();
    let dir = tmpdir("drain");
    let path = fresh_saved(&dir, "db.rpq");

    let db = UpdatableDatabase::open_durable(&path).unwrap();
    db.insert("d", "p", "e");
    db.commit();
    let want_epoch = db.epoch();
    let server = db
        .into_server(rpq_server::ServerConfig {
            workers: 1,
            ..rpq_server::ServerConfig::default()
        })
        .unwrap();
    let answer = server.query_blocking("?x", "p", "?y").unwrap();
    assert!(!answer.pairs.is_empty());

    let report = server.drain(Duration::from_secs(30));
    assert_eq!(report.aborted, 0);
    assert_eq!(report.checkpoint_error, None);
    assert_eq!(report.checkpoint_epoch, Some(want_epoch));
    drop(server);

    let wal = ring::wal::Wal::inspect(&UpdatableDatabase::wal_path(&path)).unwrap();
    assert_eq!(wal.base_epoch, want_epoch);
    assert_eq!(wal.op_count(), 0);
    // The checkpointed snapshot holds the committed edge.
    let revived = UpdatableDatabase::open_durable(&path).unwrap();
    assert!(edges(&revived).contains(&("d".into(), "p".into(), "e".into())));
}
