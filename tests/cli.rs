//! End-to-end tests of the `rpq-cli` binary: build → persist → load →
//! query, plus failure modes.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rpq-cli"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rpq_cli_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn build_query_roundtrip() {
    let dir = tmpdir("roundtrip");
    let graph = dir.join("metro.txt");
    std::fs::write(
        &graph,
        "baquedano l5 bellas_artes
         bellas_artes l5 santa_ana
         santa_ana l5 bellas_artes
         bellas_artes l5 baquedano
         santa_ana bus u_de_chile
         bellas_artes bus santa_ana
        ",
    )
    .unwrap();
    let index = dir.join("metro.db");

    let out = cli()
        .args(["build", graph.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("indexed 6 edges"));
    assert!(index.exists());

    let out = cli()
        .args([
            "query",
            index.to_str().unwrap(),
            "baquedano",
            "l5+/bus",
            "?y",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baquedano\tsanta_ana"), "{stdout}");
    assert!(stdout.contains("baquedano\tu_de_chile"), "{stdout}");

    let out = cli()
        .args(["stats", index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges (base):        6"), "{stdout}");
    assert!(stdout.contains("ring bytes"), "{stdout}");

    let out = cli()
        .args(["bench", index.to_str().unwrap(), "?x", "l5*", "?y", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("3 runs"));

    let out = cli()
        .args([
            "explain",
            index.to_str().unwrap(),
            "baquedano",
            "l5+/bus",
            "?y",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("strategy:"), "{text}");
    assert!(text.contains("backward traversal"), "{text}");

    // `query --explain`: the planner's decision as one stable JSON
    // object, no evaluation (no result rows, no pair-count footer).
    let out = cli()
        .args([
            "query",
            index.to_str().unwrap(),
            "baquedano",
            "l5+/bus",
            "?y",
            "--explain",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.starts_with("{\"pattern\":"), "{json}");
    assert!(json.contains("\"route\":\"bitparallel\""), "{json}");
    assert!(json.contains("\"direction\":\"from_subject\""), "{json}");
    assert!(!json.contains("baquedano\t"), "--explain must not evaluate");

    // `batch --explain`: one JSON object per query line, errors inline.
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "?x l5 ?y\nbaquedano l5+/bus ?y\nnot-enough\n").unwrap();
    let out = cli()
        .args([
            "batch",
            index.to_str().unwrap(),
            queries.to_str().unwrap(),
            "--explain",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = json.lines().collect();
    assert_eq!(lines.len(), 3, "{json}");
    assert!(lines[0].contains("\"route\":\"fastpath\""), "{json}");
    assert!(lines[1].contains("\"route\":\"bitparallel\""), "{json}");
    assert!(lines[2].contains("\"error\""), "{json}");
}

#[test]
fn cli_failure_modes() {
    let dir = tmpdir("failures");

    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing input file.
    let out = cli()
        .args([
            "build",
            "/nonexistent/g.txt",
            dir.join("x.db").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Corrupt index file.
    let bad = dir.join("bad.db");
    std::fs::write(&bad, b"not a database").unwrap();
    let out = cli()
        .args(["query", bad.to_str().unwrap(), "?x", "p", "?y"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // Malformed expression on a valid index: typed parse diagnostic,
    // exit code 2, no backtrace.
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "a p b\n").unwrap();
    let index = dir.join("g.db");
    assert!(cli()
        .args(["build", graph.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    let out = cli()
        .args(["query", index.to_str().unwrap(), "a", "p/(", "?y"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "parse errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error: expression error"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("backtrace"), "{stderr}");

    // Unknown node: same typed treatment.
    let out = cli()
        .args(["query", index.to_str().unwrap(), "nosuch", "p", "?y"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Operational errors keep exit code 1.
    let out = cli()
        .args(["query", "/nonexistent.db", "a", "p", "?y"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    // Help exits cleanly.
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

/// The bundled N-Triples fixture round-trips through build → query →
/// stats, exercising the `.nt` sniffing path of `cmd_build`.
#[test]
fn build_query_ntriples_fixture() {
    let dir = tmpdir("ntriples");
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data/metro.nt");
    let index = dir.join("metro_nt.db");

    let out = cli()
        .args(["build", fixture.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("indexed 13 edges"));

    // The paper's worked query, §4 / Fig. 6: l5+ then one bus hop.
    let out = cli()
        .args([
            "query",
            index.to_str().unwrap(),
            "<baquedano>",
            "<l5>+/<bus>",
            "?y",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<baquedano>\t<santa_ana>"), "{stdout}");
    assert!(stdout.contains("<baquedano>\t<u_de_chile>"), "{stdout}");

    // An inverse-step (2RPQ) query through the CLI.
    let out = cli()
        .args([
            "query",
            index.to_str().unwrap(),
            "?x",
            "^<bus>",
            "<santa_ana>",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<u_de_chile>\t<santa_ana>"), "{stdout}");

    let out = cli()
        .args(["stats", index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("edges (base):        13"));
}

/// The `serve` subcommand: a query-per-line session over stdin, with
/// per-query sorted/deduplicated blocks, per-line error isolation, and
/// the metrics registry JSON on demand.
#[test]
fn serve_session_over_stdin() {
    use std::io::Write;
    let dir = tmpdir("serve");
    let graph = dir.join("g.txt");
    std::fs::write(
        &graph,
        "baquedano l5 bellas_artes
         bellas_artes l5 santa_ana
         santa_ana bus u_de_chile
        ",
    )
    .unwrap();
    let index = dir.join("g.db");
    assert!(cli()
        .args(["build", graph.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());

    let mut child = cli()
        .args([
            "serve",
            index.to_str().unwrap(),
            "--workers",
            "2",
            "--metrics",
            "-",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"baquedano l5+/bus ?y\n\
              # a comment line\n\
              ?x l5 santa_ana\n\
              baquedano l5+/( ?y\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("# query 1: baquedano l5+/bus ?y"),
        "{stdout}"
    );
    assert!(stdout.contains("baquedano\tu_de_chile"), "{stdout}");
    assert!(stdout.contains("bellas_artes\tsanta_ana"), "{stdout}");
    assert!(stdout.contains("# 1 pairs"), "{stdout}");
    // The malformed third query fails in isolation.
    assert!(stdout.contains("# error: parse error"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("served 3 queries (2 ok, 1 failed)"),
        "{stderr}"
    );
    // Metrics JSON lands on stderr with the expected sections.
    assert!(stderr.contains("\"plan_cache\""), "{stderr}");
    assert!(stderr.contains("\"latency_us\""), "{stderr}");
}

/// The `batch` subcommand runs a query file through the service and
/// produces byte-deterministic output across thread counts.
#[test]
fn batch_is_deterministic_across_worker_counts() {
    let dir = tmpdir("batch");
    let graph = dir.join("g.txt");
    // A diamond with parallel labels: multi-row answers to sort.
    std::fs::write(&graph, "a p b\na p c\nb p d\nc p d\nd q a\nb q c\n").unwrap();
    let index = dir.join("g.db");
    assert!(cli()
        .args(["build", graph.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "?x p+ ?y\na p/p ?y\n?x (p|q)+ a\n?x ^p d\n").unwrap();

    let run = |workers: &str| {
        let metrics = dir.join(format!("metrics_{workers}.json"));
        let out = cli()
            .args([
                "batch",
                index.to_str().unwrap(),
                queries.to_str().unwrap(),
                "--workers",
                workers,
                "--metrics",
                metrics.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"result_cache\""), "{json}");
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let one = run("1");
    let four = run("4");
    assert_eq!(one, four, "output must not depend on worker count");
    assert!(one.contains("a\td"), "{one}");
}

/// `build --mmap` writes the RRPQM01 format; queries over the mapped
/// index are byte-identical to the stream-format heap load, `stats`
/// reports the residency, and updates fold back into a mapped file.
#[test]
fn mmap_build_query_roundtrip() {
    let dir = tmpdir("mmap");
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data/metro.nt");
    let stream = dir.join("metro.db");
    let mapped = dir.join("metro.rpqm");

    for (flagged, index) in [(false, &stream), (true, &mapped)] {
        let mut args = vec!["build", fixture.to_str().unwrap(), index.to_str().unwrap()];
        if flagged {
            args.push("--mmap");
        }
        let out = cli().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let magic = std::fs::read(&mapped).unwrap()[..8].to_vec();
    assert_eq!(&magic, b"RRPQM01\0");

    // Identical rows from the stream-format load and from the mapped
    // index under both forced residencies.
    let ask = |index: &std::path::Path, extra: &[&str]| {
        let mut args = vec![
            "query",
            index.to_str().unwrap(),
            "<baquedano>",
            "<l5>+/<bus>",
            "?y",
        ];
        args.extend_from_slice(extra);
        let out = cli().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let reference = ask(&stream, &[]);
    assert!(
        reference.contains("<baquedano>\t<u_de_chile>"),
        "{reference}"
    );
    assert_eq!(ask(&mapped, &[]), reference);
    assert_eq!(ask(&mapped, &["--heap"]), reference);
    #[cfg(all(unix, target_pointer_width = "64"))]
    assert_eq!(ask(&mapped, &["--mmap"]), reference);

    // `stats` surfaces the residency of the open.
    let out = cli()
        .args(["stats", mapped.to_str().unwrap(), "--heap"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(heap, 0 mapped bytes)"), "{stdout}");

    // Inserting into a mapped index keeps the file mapped.
    let delta = dir.join("delta.nt");
    std::fs::write(&delta, "<u_de_chile> <l5> <baquedano> .\n").unwrap();
    let out = cli()
        .args(["insert", mapped.to_str().unwrap(), delta.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let magic = std::fs::read(&mapped).unwrap()[..8].to_vec();
    assert_eq!(&magic, b"RRPQM01\0", "insert must preserve the format");
    let rows = ask(&mapped, &[]);
    assert!(rows.contains("<baquedano>\t<u_de_chile>"), "{rows}");
}

/// A malformed N-Triples file is rejected with a positioned error, not
/// silently mis-parsed as whitespace triples.
#[test]
fn malformed_ntriples_is_rejected() {
    let dir = tmpdir("bad_ntriples");
    let bad = dir.join("bad.nt");
    std::fs::write(&bad, "<a> <p> <b> .\n<unterminated\n").unwrap();
    let out = cli()
        .args([
            "build",
            bad.to_str().unwrap(),
            dir.join("x.db").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}
