//! End-to-end tests of the `rpq-cli` binary: build → persist → load →
//! query, plus failure modes.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rpq-cli"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rpq_cli_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn build_query_roundtrip() {
    let dir = tmpdir("roundtrip");
    let graph = dir.join("metro.txt");
    std::fs::write(
        &graph,
        "baquedano l5 bellas_artes
         bellas_artes l5 santa_ana
         santa_ana l5 bellas_artes
         bellas_artes l5 baquedano
         santa_ana bus u_de_chile
         bellas_artes bus santa_ana
        ",
    )
    .unwrap();
    let index = dir.join("metro.db");

    let out = cli()
        .args(["build", graph.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("indexed 6 edges"));
    assert!(index.exists());

    let out = cli()
        .args([
            "query",
            index.to_str().unwrap(),
            "baquedano",
            "l5+/bus",
            "?y",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baquedano\tsanta_ana"), "{stdout}");
    assert!(stdout.contains("baquedano\tu_de_chile"), "{stdout}");

    let out = cli()
        .args(["stats", index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges (base):        6"), "{stdout}");
    assert!(stdout.contains("ring bytes"), "{stdout}");

    let out = cli()
        .args([
            "bench",
            index.to_str().unwrap(),
            "?x",
            "l5*",
            "?y",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("3 runs"));

    let out = cli()
        .args([
            "explain",
            index.to_str().unwrap(),
            "baquedano",
            "l5+/bus",
            "?y",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("strategy:"), "{text}");
    assert!(text.contains("backward traversal"), "{text}");
}

#[test]
fn cli_failure_modes() {
    let dir = tmpdir("failures");

    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing input file.
    let out = cli()
        .args(["build", "/nonexistent/g.txt", dir.join("x.db").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Corrupt index file.
    let bad = dir.join("bad.db");
    std::fs::write(&bad, b"not a database").unwrap();
    let out = cli()
        .args(["query", bad.to_str().unwrap(), "?x", "p", "?y"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // Malformed expression on a valid index.
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "a p b\n").unwrap();
    let index = dir.join("g.db");
    assert!(cli()
        .args(["build", graph.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    let out = cli()
        .args(["query", index.to_str().unwrap(), "a", "p/(", "?y"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Help exits cleanly.
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
