//! End-to-end tests of the `rpq-cli` binary: build → persist → load →
//! query, plus failure modes.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rpq-cli"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rpq_cli_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn build_query_roundtrip() {
    let dir = tmpdir("roundtrip");
    let graph = dir.join("metro.txt");
    std::fs::write(
        &graph,
        "baquedano l5 bellas_artes
         bellas_artes l5 santa_ana
         santa_ana l5 bellas_artes
         bellas_artes l5 baquedano
         santa_ana bus u_de_chile
         bellas_artes bus santa_ana
        ",
    )
    .unwrap();
    let index = dir.join("metro.db");

    let out = cli()
        .args(["build", graph.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("indexed 6 edges"));
    assert!(index.exists());

    let out = cli()
        .args([
            "query",
            index.to_str().unwrap(),
            "baquedano",
            "l5+/bus",
            "?y",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baquedano\tsanta_ana"), "{stdout}");
    assert!(stdout.contains("baquedano\tu_de_chile"), "{stdout}");

    let out = cli()
        .args(["stats", index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges (base):        6"), "{stdout}");
    assert!(stdout.contains("ring bytes"), "{stdout}");

    let out = cli()
        .args(["bench", index.to_str().unwrap(), "?x", "l5*", "?y", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("3 runs"));

    let out = cli()
        .args([
            "explain",
            index.to_str().unwrap(),
            "baquedano",
            "l5+/bus",
            "?y",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("strategy:"), "{text}");
    assert!(text.contains("backward traversal"), "{text}");
}

#[test]
fn cli_failure_modes() {
    let dir = tmpdir("failures");

    // Unknown command.
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing input file.
    let out = cli()
        .args([
            "build",
            "/nonexistent/g.txt",
            dir.join("x.db").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Corrupt index file.
    let bad = dir.join("bad.db");
    std::fs::write(&bad, b"not a database").unwrap();
    let out = cli()
        .args(["query", bad.to_str().unwrap(), "?x", "p", "?y"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // Malformed expression on a valid index.
    let graph = dir.join("g.txt");
    std::fs::write(&graph, "a p b\n").unwrap();
    let index = dir.join("g.db");
    assert!(cli()
        .args(["build", graph.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap()
        .status
        .success());
    let out = cli()
        .args(["query", index.to_str().unwrap(), "a", "p/(", "?y"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Help exits cleanly.
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

/// The bundled N-Triples fixture round-trips through build → query →
/// stats, exercising the `.nt` sniffing path of `cmd_build`.
#[test]
fn build_query_ntriples_fixture() {
    let dir = tmpdir("ntriples");
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("data/metro.nt");
    let index = dir.join("metro_nt.db");

    let out = cli()
        .args(["build", fixture.to_str().unwrap(), index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("indexed 13 edges"));

    // The paper's worked query, §4 / Fig. 6: l5+ then one bus hop.
    let out = cli()
        .args([
            "query",
            index.to_str().unwrap(),
            "<baquedano>",
            "<l5>+/<bus>",
            "?y",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<baquedano>\t<santa_ana>"), "{stdout}");
    assert!(stdout.contains("<baquedano>\t<u_de_chile>"), "{stdout}");

    // An inverse-step (2RPQ) query through the CLI.
    let out = cli()
        .args([
            "query",
            index.to_str().unwrap(),
            "?x",
            "^<bus>",
            "<santa_ana>",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<u_de_chile>\t<santa_ana>"), "{stdout}");

    let out = cli()
        .args(["stats", index.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("edges (base):        13"));
}

/// A malformed N-Triples file is rejected with a positioned error, not
/// silently mis-parsed as whitespace triples.
#[test]
fn malformed_ntriples_is_rejected() {
    let dir = tmpdir("bad_ntriples");
    let bad = dir.join("bad.nt");
    std::fs::write(&bad, "<a> <p> <b> .\n<unterminated\n").unwrap();
    let out = cli()
        .args([
            "build",
            bad.to_str().unwrap(),
            dir.join("x.db").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
}
