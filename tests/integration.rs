//! Workspace-level integration tests: the name-level façade, the four
//! engines, the LTJ evaluator and the workload generator working together
//! on shared data.

use baselines::{
    AdjacencyIndex, BitParallelAdjEngine, NfaBfsEngine, PathEngine, RingEngine, SemiNaiveEngine,
};
use ring_rpq::RpqDatabase;
use rpq_core::oracle::evaluate_naive;
use rpq_core::EngineOptions;
use std::sync::Arc;
use workload::{metro, GraphGen, GraphGenConfig, QueryGen};

#[test]
fn facade_reproduces_paper_example() {
    let g = metro::metro();
    let (nodes, preds) = metro::metro_dicts();
    let db = RpqDatabase::from_parts(g, nodes, preds);
    let got = db.query("Baquedano", "l5+/bus", "?y").unwrap();
    assert_eq!(
        got,
        vec![
            ("Baquedano".to_string(), "SantaAna".to_string()),
            ("Baquedano".to_string(), "UdeChile".to_string()),
        ]
    );
}

#[test]
fn all_engines_agree_on_generated_workload() {
    let graph = GraphGen::new(GraphGenConfig {
        n_nodes: 400,
        n_preds: 10,
        n_edges: 2500,
        seed: 99,
        ..Default::default()
    })
    .generate();
    let log = QueryGen::new(&graph, 5).scaled_log(0.01);
    assert!(log.len() >= 20);

    let ring = ring::Ring::build(&graph, ring::ring::RingOptions::default());
    let adj = Arc::new(AdjacencyIndex::from_graph(&graph));
    let opts = EngineOptions::default();

    let mut ring_engine = RingEngine::new(&ring);
    let mut engines: Vec<Box<dyn PathEngine>> = vec![
        Box::new(NfaBfsEngine::new(Arc::clone(&adj))),
        Box::new(SemiNaiveEngine::new(Arc::clone(&adj))),
        Box::new(BitParallelAdjEngine::new(Arc::clone(&adj))),
    ];

    for gq in &log {
        let expected = ring_engine.run(&gq.query, &opts).unwrap().sorted_pairs();
        // The ring itself must match the naive oracle.
        assert_eq!(
            expected,
            evaluate_naive(&graph, &gq.query),
            "ring vs oracle on {}",
            gq.pattern
        );
        for engine in engines.iter_mut() {
            assert_eq!(
                engine.run(&gq.query, &opts).unwrap().sorted_pairs(),
                expected,
                "{} vs ring on {}",
                engine.name(),
                gq.pattern
            );
        }
    }
}

#[test]
fn ltj_and_rpq_compose_on_one_ring() {
    use ring::ltj::{leapfrog_join, Term as JoinTerm, TriplePattern};

    let db = RpqDatabase::from_text(
        "a follows b\nb follows c\nc follows a\na likes x\nb likes x\nc likes y\n",
    )
    .unwrap();
    let follows = db.preds().get("follows").unwrap();
    let likes = db.preds().get("likes").unwrap();

    // ?u follows ?v, ?u likes ?w, ?v likes ?w — mutual interests.
    let pats = [
        TriplePattern::new(JoinTerm::Var(0), follows, JoinTerm::Var(1)),
        TriplePattern::new(JoinTerm::Var(0), likes, JoinTerm::Var(2)),
        TriplePattern::new(JoinTerm::Var(1), likes, JoinTerm::Var(2)),
    ];
    let rows = leapfrog_join(db.ring(), &pats, &[0, 1, 2]);
    let named: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(|&v| db.nodes().name(v)).collect())
        .collect();
    assert_eq!(named, vec![vec!["a", "b", "x"]]);

    // And an RPQ on the same index.
    let closure = db.query("a", "follows+", "?y").unwrap();
    assert_eq!(closure.len(), 3); // a, b, c (cycle)
}

#[test]
fn database_persistence_roundtrip() {
    let g = metro::metro();
    let (nodes, preds) = metro::metro_dicts();
    let db = RpqDatabase::from_parts(g, nodes, preds);
    let dir = std::env::temp_dir().join("ring_rpq_db_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metro.db");
    db.save(&path).unwrap();

    let loaded = RpqDatabase::load(&path).unwrap();
    // The loaded index answers identically without rebuilding.
    for (expr, anchor) in [("l5+/bus", "Baquedano"), ("(l1|l2|l5)+", "SantaAna")] {
        assert_eq!(
            loaded.query(anchor, expr, "?y").unwrap(),
            db.query(anchor, expr, "?y").unwrap(),
            "query {expr} from {anchor}"
        );
    }
    assert_eq!(loaded.ring().n_triples(), db.ring().n_triples());
    std::fs::remove_file(&path).unwrap();

    // Corrupt file is rejected.
    let bad = dir.join("bad.db");
    std::fs::write(&bad, b"RRPQDB01 garbage").unwrap();
    assert!(RpqDatabase::load(&bad).is_err());
}

#[test]
fn facade_explain_and_batch() {
    let g = metro::metro();
    let (nodes, preds) = metro::metro_dicts();
    let db = RpqDatabase::from_parts(g, nodes, preds);

    let plan = db.explain("Baquedano", "l5+/bus", "?y").unwrap();
    assert!(plan.contains("strategy:"), "{plan}");
    assert!(plan.contains("backward traversal"), "{plan}");

    let queries: Vec<_> = ["l5+/bus", "(l1|l2|l5)+", "bus/bus"]
        .iter()
        .map(|e| db.parse_query("Baquedano", e, "?y").unwrap())
        .collect();
    let batch = db.query_batch(&queries, &EngineOptions::default(), 3);
    assert_eq!(batch.len(), 3);
    let mut engine = rpq_core::RpqEngine::new(db.ring());
    for (q, r) in queries.iter().zip(&batch) {
        let sequential = engine.evaluate(q, &EngineOptions::default()).unwrap();
        assert_eq!(
            r.as_ref().unwrap().sorted_pairs(),
            sequential.sorted_pairs()
        );
    }
}

#[test]
fn ntriples_to_queryable_database() {
    let nt = r#"
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/bob>   <http://ex/knows> <http://ex/carol> .
<http://ex/carol> <http://ex/name>  "Carol"@en .
"#;
    let (graph, nodes, preds) = ring::ntriples::parse_ntriples(nt).unwrap();
    let db = RpqDatabase::from_parts(graph, nodes, preds);
    // Transitive friends of alice, via the bracketed-IRI expression syntax.
    let got = db
        .query("<http://ex/alice>", "<http://ex/knows>+", "?y")
        .unwrap();
    assert_eq!(
        got.iter().map(|p| p.1.as_str()).collect::<Vec<_>>(),
        vec!["<http://ex/bob>", "<http://ex/carol>"]
    );
    // Literals are first-class nodes: carol's name via knows+/name.
    let got = db
        .query(
            "<http://ex/alice>",
            "<http://ex/knows>+/<http://ex/name>",
            "?y",
        )
        .unwrap();
    assert_eq!(got[0].1, "\"Carol\"@en");
}

#[test]
fn text_graphs_are_portable_across_apis() {
    let text = "n0 e n1\nn1 e n2\nn2 f n0\n";
    let db = RpqDatabase::from_text(text).unwrap();
    let (graph, _, _) = ring::Graph::parse_text(text).unwrap();
    assert_eq!(db.graph().triples(), graph.triples());
    // Completion is consistent between the ring and the plain graph.
    assert_eq!(db.ring().n_triples(), graph.completed().len());
}
