//! A curated 2RPQ conformance corpus: 25 queries over a fixed 12-edge
//! family/work graph with **hand-verified** expected answers, documenting
//! the semantics users rely on — inverse steps, negated property sets,
//! bounded repetition, nullable diagonals, constant anchoring, undirected
//! closures. Each case is also cross-checked against the naive oracle, so
//! a regression in either implementation trips the test.

use ring_rpq::RpqDatabase;
use rpq_core::oracle::evaluate_naive;

const DATA: &str = "
alice  parentOf bob
alice  parentOf carol
bob    parentOf dave
carol  parentOf erin
dave   friendOf erin
erin   friendOf frank
frank  worksFor acme
dave   worksFor acme
bob    worksFor initech
acme   ownedBy  holdco
initech ownedBy holdco
frank  friendOf alice
";

#[allow(clippy::type_complexity)]
fn corpus() -> Vec<(
    &'static str,
    &'static str,
    &'static str,
    Vec<(&'static str, &'static str)>,
)> {
    vec![
        // Plain steps and concatenations.
        (
            "alice",
            "parentOf",
            "?y",
            vec![("alice", "bob"), ("alice", "carol")],
        ),
        (
            "alice",
            "parentOf/parentOf",
            "?y",
            vec![("alice", "dave"), ("alice", "erin")],
        ),
        // Closures; * includes the zero-length path (the diagonal).
        (
            "alice",
            "parentOf+",
            "?y",
            vec![
                ("alice", "bob"),
                ("alice", "carol"),
                ("alice", "dave"),
                ("alice", "erin"),
            ],
        ),
        (
            "alice",
            "parentOf*",
            "?y",
            vec![
                ("alice", "alice"),
                ("alice", "bob"),
                ("alice", "carol"),
                ("alice", "dave"),
                ("alice", "erin"),
            ],
        ),
        // Bounded repetition.
        (
            "?x",
            "parentOf{2}",
            "?y",
            vec![("alice", "dave"), ("alice", "erin")],
        ),
        (
            "alice",
            "parentOf{1,2}",
            "?y",
            vec![
                ("alice", "bob"),
                ("alice", "carol"),
                ("alice", "dave"),
                ("alice", "erin"),
            ],
        ),
        // Inverse steps and inverse closures.
        ("dave", "^parentOf", "?y", vec![("dave", "bob")]),
        ("dave", "^parentOf/^parentOf", "?y", vec![("dave", "alice")]),
        (
            "erin",
            "(^parentOf)+",
            "?y",
            vec![("erin", "alice"), ("erin", "carol")],
        ),
        // Joins through shared endpoints.
        (
            "?x",
            "worksFor/ownedBy",
            "?y",
            vec![("bob", "holdco"), ("dave", "holdco"), ("frank", "holdco")],
        ),
        (
            "?x",
            "worksFor/ownedBy/^ownedBy",
            "?y",
            vec![
                ("bob", "acme"),
                ("bob", "initech"),
                ("dave", "acme"),
                ("dave", "initech"),
                ("frank", "acme"),
                ("frank", "initech"),
            ],
        ),
        // Alternation; anchored constants; empty results.
        (
            "dave",
            "friendOf|worksFor",
            "?y",
            vec![("dave", "acme"), ("dave", "erin")],
        ),
        ("?x", "friendOf", "holdco", vec![]),
        (
            "?x",
            "worksFor",
            "acme",
            vec![("dave", "acme"), ("frank", "acme")],
        ),
        ("dave", "parentOf", "?y", vec![]),
        // Negated property set over Σ↔ (alice's only non-parentOf
        // incidence is the friendOf edge from frank, taken inversely).
        (
            "alice",
            "!(parentOf|^parentOf)",
            "?y",
            vec![("alice", "frank")],
        ),
        // Mixed direction compositions.
        (
            "frank",
            "friendOf/parentOf",
            "?y",
            vec![("frank", "bob"), ("frank", "carol")],
        ),
        ("erin", "^friendOf/worksFor", "?y", vec![("erin", "acme")]),
        // Undirected closure (friendship either way) reaches the cycle.
        (
            "frank",
            "(friendOf|^friendOf)+",
            "?y",
            vec![
                ("frank", "alice"),
                ("frank", "dave"),
                ("frank", "erin"),
                ("frank", "frank"),
            ],
        ),
        // Optional step.
        (
            "alice",
            "parentOf?/worksFor",
            "?y",
            vec![("alice", "initech")],
        ),
        // Constant-to-constant existence.
        ("bob", "worksFor/ownedBy", "holdco", vec![("bob", "holdco")]),
        // Full-variable single steps, both directions.
        (
            "?x",
            "ownedBy",
            "?y",
            vec![("acme", "holdco"), ("initech", "holdco")],
        ),
        (
            "?x",
            "^ownedBy",
            "?y",
            vec![("holdco", "acme"), ("holdco", "initech")],
        ),
        // Group closure.
        (
            "alice",
            "(parentOf/parentOf)+",
            "?y",
            vec![("alice", "dave"), ("alice", "erin")],
        ),
        // Colleagues: same employer, including oneself.
        (
            "?x",
            "worksFor/^worksFor",
            "?y",
            vec![
                ("bob", "bob"),
                ("dave", "dave"),
                ("dave", "frank"),
                ("frank", "dave"),
                ("frank", "frank"),
            ],
        ),
    ]
}

#[test]
fn corpus_matches_expected_answers() {
    let db = RpqDatabase::from_text(DATA).unwrap();
    for (s, e, o, expected) in corpus() {
        let got = db.query(s, e, o).unwrap();
        let got: Vec<(&str, &str)> = got.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        assert_eq!(got, expected, "({s}, {e}, {o})");
    }
}

#[test]
fn corpus_matches_oracle() {
    let db = RpqDatabase::from_text(DATA).unwrap();
    for (s, e, o, _) in corpus() {
        let q = db.parse_query(s, e, o).unwrap();
        let expected = evaluate_naive(db.graph(), &q);
        let got = db
            .query_with(s, e, o, &rpq_core::EngineOptions::default())
            .unwrap()
            .sorted_pairs();
        assert_eq!(got, expected, "oracle disagrees on ({s}, {e}, {o})");
    }
}

#[test]
fn corpus_is_stable_under_persistence() {
    let db = RpqDatabase::from_text(DATA).unwrap();
    let path = std::env::temp_dir().join("corpus_roundtrip.db");
    db.save(&path).unwrap();
    let loaded = RpqDatabase::load(&path).unwrap();
    for (s, e, o, expected) in corpus() {
        let got = loaded.query(s, e, o).unwrap();
        let got: Vec<(&str, &str)> = got.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        assert_eq!(got, expected, "after reload: ({s}, {e}, {o})");
    }
    let _ = std::fs::remove_file(&path);
}
