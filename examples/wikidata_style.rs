//! A Wikidata-scale-in-miniature benchmark: build a synthetic knowledge
//! graph with Zipf-skewed labels, index it four ways, and race the paper's
//! Table 1 query mix across all engines.
//!
//! Run with: `cargo run --release --example wikidata_style`

use baselines::{
    AdjacencyIndex, BitParallelAdjEngine, NfaBfsEngine, PathEngine, RingEngine, SemiNaiveEngine,
};
use ring::ring::RingOptions;
use ring::Ring;
use rpq_core::EngineOptions;
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::{GraphGen, GraphGenConfig, QueryGen};

fn main() {
    let cfg = GraphGenConfig {
        n_nodes: 1 << 15,
        n_preds: 96,
        n_edges: 1 << 18,
        seed: 2024,
        ..Default::default()
    };
    println!("generating graph: {cfg:?}");
    let graph = GraphGen::new(cfg).generate();

    let t = Instant::now();
    let ring = Ring::build(&graph, RingOptions::default());
    println!(
        "ring built in {:.2}s — {:.2} bytes/edge ({} edges indexed)",
        t.elapsed().as_secs_f64(),
        ring.size_bytes() as f64 / graph.len() as f64,
        ring.n_triples(),
    );
    let adj = Arc::new(AdjacencyIndex::from_graph(&graph));
    println!(
        "adjacency index — {:.2} bytes/edge",
        adj.size_bytes() as f64 / graph.len() as f64
    );

    let mut log_gen = QueryGen::new(&graph, 7);
    let log = log_gen.scaled_log(0.02);
    println!("query log: {} queries in the Table 1 mix\n", log.len());

    let opts = EngineOptions {
        limit: 100_000,
        timeout: Some(Duration::from_millis(1500)),
        ..EngineOptions::default()
    };

    let mut engines: Vec<Box<dyn PathEngine>> = vec![
        Box::new(RingEngine::new(&ring)),
        Box::new(NfaBfsEngine::new(Arc::clone(&adj))),
        Box::new(SemiNaiveEngine::new(Arc::clone(&adj))),
        Box::new(BitParallelAdjEngine::new(Arc::clone(&adj))),
    ];

    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}",
        "engine", "total (s)", "avg (ms)", "timeouts", "results"
    );
    for engine in engines.iter_mut() {
        let mut total = 0.0;
        let mut timeouts = 0usize;
        let mut results = 0usize;
        for gq in &log {
            let t = Instant::now();
            let out = engine.run(&gq.query, &opts).expect("query runs");
            total += t.elapsed().as_secs_f64();
            timeouts += out.timed_out as usize;
            results += out.pairs.len();
        }
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>10} {:>10}",
            engine.name(),
            total,
            total * 1000.0 / log.len() as f64,
            timeouts,
            results
        );
    }
}
