//! Advanced features tour: index persistence, wavelet-based selectivity
//! statistics (§6), and the rare-label split strategy (§2 / §6 future
//! work) — all verified against the default engine as it runs.
//!
//! Run with: `cargo run --release --example advanced_planning`

use automata::Regex;
use ring::ring::RingOptions;
use ring::Ring;
use rpq_core::split::{best_split, evaluate_split};
use rpq_core::stats::RingStatistics;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};
use succinct::io::Persist;
use workload::{GraphGen, GraphGenConfig};

fn main() {
    // A synthetic graph with one deliberately rare predicate: id 15 in a
    // Zipf tail of 16.
    let graph = GraphGen::new(GraphGenConfig {
        n_nodes: 1 << 12,
        n_preds: 16,
        n_edges: 1 << 15,
        seed: 77,
        ..Default::default()
    })
    .generate();
    let ring = Ring::build(&graph, RingOptions::default());

    // --- Selectivity statistics (§6) -----------------------------------
    let stats = RingStatistics::new(&ring);
    println!("predicate cardinalities (Zipf head and tail):");
    for p in [0u64, 1, 7, 15] {
        println!(
            "  p{p}: {} edges, {} distinct sources",
            stats.pred_cardinality(p),
            stats.distinct_subjects_of(p)
        );
    }
    let hub = (0..graph.n_nodes())
        .max_by_key(|&v| stats.in_degree(v))
        .unwrap();
    println!(
        "hub node {hub}: in-degree {}, {} distinct incoming labels",
        stats.in_degree(hub),
        stats.distinct_preds_into(hub)
    );

    // --- Rare-label splitting (§2, §6) ----------------------------------
    // a*/rare/b* — the textbook case for splitting. Tail labels keep the
    // exact answer set under the result limit so both strategies can be
    // compared pair-for-pair.
    let star = |l| Regex::Star(Box::new(Regex::label(l)));
    let expr = Regex::concat(Regex::concat(star(12), Regex::label(15)), star(13));
    println!(
        "\nsplitting {expr}: rarest label = {:?}",
        stats.rarest_label(&expr)
    );
    let split = best_split(&ring, &expr).expect("has a literal factor");
    let opts = EngineOptions::default();
    let t = std::time::Instant::now();
    let via_split = evaluate_split(&ring, &split, &opts).unwrap();
    let t_split = t.elapsed();
    let t = std::time::Instant::now();
    let direct = RpqEngine::new(&ring)
        .evaluate(&RpqQuery::new(Term::Var, expr, Term::Var), &opts)
        .unwrap();
    let t_direct = t.elapsed();
    assert!(!via_split.truncated && !direct.truncated);
    assert_eq!(via_split.sorted_pairs(), direct.sorted_pairs());
    println!(
        "split strategy: {} pairs in {t_split:?}; direct engine: same {} pairs in {t_direct:?}",
        via_split.pairs.len(),
        direct.pairs.len()
    );

    // --- Persistence -----------------------------------------------------
    let path = std::env::temp_dir().join("advanced_planning.ring");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        ring.write_to(&mut f).unwrap();
    }
    let loaded = {
        let mut f = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
        Ring::read_from(&mut f).unwrap()
    };
    println!(
        "\npersisted ring: {} bytes on disk, {} triples reload identically",
        std::fs::metadata(&path).unwrap().len(),
        loaded.n_triples()
    );
    let q = RpqQuery::new(Term::Const(hub), star(0), Term::Var);
    assert_eq!(
        RpqEngine::new(&loaded)
            .evaluate(&q, &opts)
            .unwrap()
            .sorted_pairs(),
        RpqEngine::new(&ring)
            .evaluate(&q, &opts)
            .unwrap()
            .sorted_pairs(),
    );
    println!("loaded index answers queries identically — done.");
    let _ = std::fs::remove_file(&path);
}
