//! RPQs inside multijoins: the §6 integration scenario. The ring answers
//! basic graph patterns worst-case-optimally with Leapfrog-TrieJoin, and
//! RPQs filter/extend the same index — no second data structure.
//!
//! The query, in SPARQL terms:
//!
//! ```sparql
//! SELECT ?person ?city WHERE {
//!   ?person  livesIn   ?city .
//!   ?city    locatedIn chile .
//!   ?person  (worksWith|^worksWith)+  ada .   # RPQ over the same ring
//! }
//! ```
//!
//! Run with: `cargo run --release --example join_rpq`

use ring::ltj::{leapfrog_join, Term as JoinTerm, TriplePattern};
use ring_rpq::RpqDatabase;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};
use std::path::Path;
use succinct::util::FxHashSet;

fn main() {
    // Residence/collaboration data ships as the bundled N-Triples
    // fixture data/team.nt; IRIs keep their brackets as names.
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("data/team.nt");
    let db = RpqDatabase::from_graph_file(&fixture).unwrap();
    let ring = db.ring();
    let nodes = db.nodes();
    let preds = db.preds();

    // Step 1: the conjunctive part with Leapfrog-TrieJoin.
    // Variables: 0 = ?person, 1 = ?city.
    let lives_in = preds.get("<livesIn>").unwrap();
    let located_in = preds.get("<locatedIn>").unwrap();
    let chile = nodes.get("<chile>").unwrap();
    let patterns = [
        TriplePattern::new(JoinTerm::Var(0), lives_in, JoinTerm::Var(1)),
        TriplePattern::new(JoinTerm::Var(1), located_in, JoinTerm::Const(chile)),
    ];
    let bindings = leapfrog_join(ring, &patterns, &[1, 0]);
    println!("LTJ bindings (?person livesIn ?city, ?city locatedIn chile):");
    for b in &bindings {
        println!("  ?person={} ?city={}", nodes.name(b[0]), nodes.name(b[1]));
    }

    // Step 2: the RPQ over the same ring: people connected to ada through
    // the undirected worksWith network.
    let ada = nodes.get("<ada>").unwrap();
    let rpq = RpqQuery::new(
        Term::Var,
        db.parse_query("?x", "(<worksWith>|^<worksWith>)+", "?y")
            .unwrap()
            .expr,
        Term::Const(ada),
    );
    let out = RpqEngine::new(ring)
        .evaluate(&rpq, &EngineOptions::default())
        .unwrap();
    let connected: FxHashSet<u64> = out.pairs.iter().map(|&(s, _)| s).collect();
    println!("\nconnected to ada via (worksWith|^worksWith)+:");
    for &p in &connected {
        println!("  {}", nodes.name(p));
    }

    // Step 3: join the two result sets.
    println!("\nChilean residents in ada's collaboration network:");
    let mut results: Vec<(String, String)> = bindings
        .iter()
        .filter(|b| connected.contains(&b[0]) || b[0] == ada)
        .map(|b| (nodes.name(b[0]).to_string(), nodes.name(b[1]).to_string()))
        .collect();
    results.sort();
    for (person, city) in &results {
        println!("  {person} ({city})");
    }
    assert_eq!(
        results.iter().map(|(p, _)| p.as_str()).collect::<Vec<_>>(),
        vec!["<ada>", "<bruno>", "<carla>"]
    );
}
