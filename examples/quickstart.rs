//! Quickstart: the paper's running example on the Santiago metro graph
//! (Fig. 1), loaded from the bundled N-Triples fixture and evaluated
//! through the name-level API.
//!
//! Run with: `cargo run --release --example quickstart`

use ring_rpq::RpqDatabase;
use std::path::Path;

fn main() {
    // The metro graph of Fig. 1 ships as data/metro.nt: metro lines are
    // bidirectional, the bus hops are one-way. N-Triples IRIs keep their
    // brackets as names, so stations are "<baquedano>" etc.
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("data/metro.nt");
    let db = RpqDatabase::from_graph_file(&fixture).expect("bundled fixture parses");

    println!(
        "metro graph: {} edges, {} stations, {} labels; ring index: {} bytes",
        db.graph().len(),
        db.graph().n_nodes(),
        db.graph().n_preds(),
        db.ring().size_bytes(),
    );

    // §4's worked example: where can we get from Baquedano by metro line 5
    // and then exactly one bus hop? The paper's Fig. 6 trace reports
    // Santa Ana and Universidad de Chile.
    let reachable = db.query("<baquedano>", "<l5>+/<bus>", "?y").unwrap();
    println!("\n(baquedano, l5+/bus, ?y):");
    for (_, station) in &reachable {
        println!("  -> {station}");
    }
    assert_eq!(
        reachable.iter().map(|p| p.1.as_str()).collect::<Vec<_>>(),
        vec!["<santa_ana>", "<u_de_chile>"]
    );

    // The introduction's example: everything reachable by metro.
    let metro_pairs = db.query("<baquedano>", "(<l1>|<l2>|<l5>)+", "?y").unwrap();
    println!(
        "\n(baquedano, (l1|l2|l5)+, ?y): {} stations",
        metro_pairs.len()
    );

    // A two-way query: who reaches Santa Ana going *against* a bus edge?
    let upstream = db.query("?x", "^<bus>", "<santa_ana>").unwrap();
    println!("\n(?x, ^bus, santa_ana):");
    for (station, _) in &upstream {
        println!("  {station} <-");
    }

    // A negated property set: one hop by anything except a bus.
    let not_bus = db.query("<baquedano>", "!(<bus>|^<bus>)", "?y").unwrap();
    println!(
        "\n(baquedano, !(bus|^bus), ?y): {} neighbours",
        not_bus.len()
    );
}
