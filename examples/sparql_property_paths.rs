//! SPARQL-style property paths over an RDF-flavoured graph: bracketed
//! IRIs, inverse paths, negated property sets, and the four query shapes
//! (`c→v`, `v→c`, `c→c`, `v→v`).
//!
//! Run with: `cargo run --release --example sparql_property_paths`

use ring_rpq::RpqDatabase;
use std::path::Path;

fn main() {
    // A small FOAF-ish graph, parsed from the bundled N-Triples fixture
    // (which also carries RDF literals — they become ordinary nodes).
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("data/foaf.nt");
    let db = RpqDatabase::from_graph_file(&fixture).unwrap();

    // c → v: transitive closure.  SPARQL: <alice> <knows>+ ?y
    let friends = db.query("<alice>", "<knows>+", "?y").unwrap();
    println!("<alice> <knows>+ ?y:");
    for (_, y) in &friends {
        println!("  {y}");
    }

    // v → v with an inverse step: colleagues share an employer.
    // SPARQL: ?x <worksAt>/^<worksAt> ?y
    let colleagues = db.query("?x", "<worksAt>/^<worksAt>", "?y").unwrap();
    println!("\n?x <worksAt>/^<worksAt> ?y ({} pairs):", colleagues.len());
    for (x, y) in &colleagues {
        println!("  {x} ~ {y}");
    }
    assert!(colleagues.contains(&("<alice>".into(), "<bob>".into())));

    // Negated property set: any single edge except <knows>, either way.
    // SPARQL: <dave> !(<knows>|^<knows>) ?y
    let non_knows = db.query("<dave>", "!(<knows>|^<knows>)", "?y").unwrap();
    println!("\n<dave> !(<knows>|^<knows>) ?y:");
    for (_, y) in &non_knows {
        println!("  {y}");
    }
    assert_eq!(non_knows.len(), 1); // only the <mentors> edge

    // c → c: an existence check along a mixed path.
    // SPARQL ASK: <eve> <knows>/<knows>*/<worksAt> <initech>
    let hit = db
        .query("<eve>", "<knows>/<knows>*/<worksAt>", "<initech>")
        .unwrap();
    println!(
        "\n<eve> reaches <initech> through the social graph: {}",
        !hit.is_empty()
    );
    assert!(!hit.is_empty());

    // v → c with an optional step.
    // SPARQL: ?x <mentors>?/<worksAt> <acme>
    let at_acme = db.query("?x", "<mentors>?/<worksAt>", "<acme>").unwrap();
    println!("\n?x <mentors>?/<worksAt> <acme>:");
    for (x, _) in &at_acme {
        println!("  {x}");
    }
    assert!(at_acme.contains(&("<dave>".into(), "<acme>".into())));
}
